package core

import (
	"context"
	"fmt"
	"math"

	"priceadaptive/internal/vmprog"

	"priceadaptive/internal/adversary"
	"priceadaptive/internal/bounds"
	"priceadaptive/internal/check"
	"priceadaptive/internal/mutex"
	"priceadaptive/internal/objects"
	"priceadaptive/internal/rmr"
	"priceadaptive/internal/tso"
)

// victimF is the adaptivity budget claimed for the synthetic read/write
// lock in construction experiments; the lock's measured cost is ~8 critical
// events solo plus ~7 per unit of contention, so this is a valid (linear)
// adaptivity function for it.
func victimF() bounds.AdaptivityFunc { return bounds.Affine{A: 16, C: 10} }

// E1Construction regenerates Figure 1: the phase structure of the inductive
// construction, with per-phase active-set sizes, iteration counts
// (the paper's s, t, m) and erasures, running against the adaptive
// read/write lock.
func E1Construction(ctx context.Context, n int) (*Report, error) {
	res, err := adversary.Run(ctx, adversary.Config{
		N:         n,
		Algorithm: mutex.Build(mutex.NewSynthetic),
		F:         victimF(),
		Check:     adversary.CheckInvariants,
	})
	if err != nil {
		return nil, fmt.Errorf("core: E1: %w", err)
	}
	rep := &Report{
		ID:     "E1",
		Title:  fmt.Sprintf("structure of the inductive construction (Figure 1), N=%d, victim=synthetic", n),
		Header: []string{"step i", "phase", "iterations", "|Act| before", "|Act| after", "erased"},
	}
	for _, ph := range res.Phases {
		rep.Rows = append(rep.Rows, []string{
			itoa(ph.Induction), ph.Phase, itoa(ph.Iterations),
			itoa(ph.ActiveBefore), itoa(ph.ActiveAfter), itoa(ph.Erased),
		})
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("stopped: %v; fences forced: %d; witness contention: %d; events: %d",
			res.Stopped, res.FencesForced, res.TotalContention, res.Events),
		"every read/write/regularize triple builds H_{i+1} from H_i; invariants of Lemmas 6-8 were asserted at every phase",
	)
	return rep, nil
}

// E2FencesForced regenerates the content of Theorem 1 / Theorem 3: for
// growing N, the number of fences the construction forces on the adaptive
// victim, alongside the Theorem 3 lower bound on the surviving active set.
func E2FencesForced(ctx context.Context, ns []int) (*Report, error) {
	rep := &Report{
		ID:     "E2",
		Title:  "fences forced by the construction vs N (Theorem 1), victim=synthetic",
		Header: []string{"N", "fences forced", "witness contention", "witness verified", "l_i (crit/active)", "|Act| remaining", "log2 Thm3 bound", "stop"},
	}
	for _, n := range ns {
		res, err := adversary.Run(ctx, adversary.Config{
			N:         n,
			Algorithm: mutex.Build(mutex.NewSynthetic),
			F:         victimF(),
			Check:     adversary.CheckNone,
		})
		if err != nil {
			return nil, fmt.Errorf("core: E2 N=%d: %w", n, err)
		}
		lb := bounds.Log2ActLowerBound(res.CriticalPerActive, res.InductionSteps, math.Log2(float64(n)))
		rep.Rows = append(rep.Rows, []string{
			itoa(n), itoa(res.FencesForced), itoa(res.TotalContention),
			fmt.Sprintf("%v", res.WitnessVerified),
			itoa(res.CriticalPerActive), itoa(res.ActiveRemaining),
			f1(lb), res.Stopped.String(),
		})
	}
	rep.Notes = append(rep.Notes,
		"expected shape: forced fences grow with N; each forced fence costs one finished process",
		"witness verified = the proof's final erasure was performed and re-checked: the extracted execution has exactly (fences+1) participants and the witness holds that many completed fences mid-passage",
		"the Theorem 3 bound is vacuous (negative) at these small N; the construction beats it because the synthetic victim is maximally cooperative",
	)
	return rep, nil
}

// E3Separation regenerates the separation of Corollary 1 empirically:
// fence complexity per passage as a function of contention k for the
// adaptive locks (growing) versus the non-adaptive constant-fence lock
// (flat) versus the Θ(log N) tournament.
func E3Separation(ctx context.Context, ks []int) (*Report, error) {
	rep := &Report{
		ID:     "E3",
		Title:  "fences/passage vs contention k (Corollary 1 separation)",
		Header: []string{"algorithm", "profile"},
	}
	for _, k := range ks {
		rep.Header = append(rep.Header, fmt.Sprintf("k=%d", k))
	}
	cases := []struct {
		name    string
		factory mutex.Factory
		profile string
	}{
		{"bakery", mutex.NewBakery, "non-adaptive, O(1) fences"},
		{"tournament", mutex.NewTournament, "non-adaptive, Θ(log N) fences"},
		{"caschain", mutex.NewCASChain, "adaptive, Θ(k) fences"},
		{"synthetic", mutex.NewSynthetic, "adaptive, Θ(k) fences"},
	}
	for _, c := range cases {
		row := []string{c.name, c.profile}
		for _, k := range ks {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			sim, err := tso.NewSimulator(tso.Config{N: k}, mutex.Build(c.factory))
			if err != nil {
				return nil, fmt.Errorf("core: E3 %s k=%d: %w", c.name, k, err)
			}
			acc := rmr.Attach(sim, rmr.ModelCCWriteBack)
			res, err := tso.Run(sim, tso.NewRoundRobin(), 50_000_000)
			if err != nil || !res.Completed || res.Violation != nil {
				sim.Kill()
				return nil, fmt.Errorf("core: E3 %s k=%d: %v (violation %v)", c.name, k, err, res.Violation)
			}
			row = append(row, itoa(acc.Summarize().MaxFences))
			sim.Kill()
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Notes = append(rep.Notes,
		"expected shape: bakery flat at 3 fences (its price: Θ(N) critical events); adaptive locks grow linearly in k; tournament grows with log N",
		"Corollary 1: no algorithm can combine the bakery's flat fence row with the adaptive locks' contention-dependent work",
	)
	return rep, nil
}

// E4LinearBound regenerates Corollary 2's table: fences forced by Theorem 1
// for a linear adaptivity function, against the closed-form
// (1/3c) log2 log2 N rate.
func E4LinearBound(log2Ns []float64) *Report {
	return boundReport("E4",
		"fence lower bound for linear adaptivity f(i)=c*i (Corollary 2)",
		bounds.Linear{C: 1}, log2Ns,
		func(l2n float64) float64 { return bounds.Corollary2Rate(1, l2n) },
		"expected shape: forced fences grow as Θ(log log N) and dominate the closed-form rate")
}

// E5ExpBound regenerates Corollary 3's table for exponential adaptivity.
func E5ExpBound(log2Ns []float64) *Report {
	return boundReport("E5",
		"fence lower bound for exponential adaptivity f(i)=2^(c*i) (Corollary 3)",
		bounds.Exponential{C: 1}, log2Ns,
		func(l2n float64) float64 { return bounds.Corollary3Rate(1, l2n) },
		"expected shape: forced fences grow as Θ(log log log N) and dominate the closed-form rate")
}

func boundReport(id, title string, fn bounds.AdaptivityFunc, log2Ns []float64, rate func(float64) float64, note string) *Report {
	rep := &Report{
		ID:     id,
		Title:  title,
		Header: []string{"log2 N", "forced fences (Thm 1)", "closed-form rate"},
	}
	for _, row := range bounds.Table(fn, log2Ns, 500, rate) {
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%g", row.Log2N), itoa(row.Forced), f2(row.Rate),
		})
	}
	rep.Notes = append(rep.Notes, note)
	return rep
}

// E6Reduction regenerates Lemma 9: the one-time mutex built from a counter
// (Algorithm 1) has the fence and RMR complexity of a single counter
// operation plus a constant, for each counter backend (direct CAS, locked,
// queue-backed, stack-backed).
func E6Reduction(ctx context.Context, n int) (*Report, error) {
	rep := &Report{
		ID:     "E6",
		Title:  fmt.Sprintf("Lemma 9 / Algorithm 1: one-time mutex from counter/queue/stack, N=%d", n),
		Header: []string{"backend", "max fences/passage", "mean fences", "max RMRs (CC-WB)", "mean RMRs"},
	}
	backends := []struct {
		name  string
		build tso.Build
	}{
		{"cas-counter", func(sim *tso.Simulator) (tso.Program, error) {
			l := objects.NewOneTimeMutex(sim.Memory(), n, objects.NewCASCounter(sim.Memory()))
			return passage(l), nil
		}},
		{"locked-counter(bakery)", func(sim *tso.Simulator) (tso.Program, error) {
			c, err := objects.NewLockedCounter(sim.Memory(), n, mutex.NewBakery)
			if err != nil {
				return nil, err
			}
			return passage(objects.NewOneTimeMutex(sim.Memory(), n, c)), nil
		}},
		{"queue(tas)", func(sim *tso.Simulator) (tso.Program, error) {
			l, err := objects.OneTimeFromQueue(sim.Memory(), n, mutex.NewTAS)
			if err != nil {
				return nil, err
			}
			return passage(l), nil
		}},
		{"stack(tas)", func(sim *tso.Simulator) (tso.Program, error) {
			l, err := objects.OneTimeFromStack(sim.Memory(), n, mutex.NewTAS)
			if err != nil {
				return nil, err
			}
			return passage(l), nil
		}},
		{"treiber-stack (lock-free)", func(sim *tso.Simulator) (tso.Program, error) {
			l, err := objects.OneTimeFromTreiber(sim.Memory(), n)
			if err != nil {
				return nil, err
			}
			return passage(l), nil
		}},
		{"ms-queue (lock-free)", func(sim *tso.Simulator) (tso.Program, error) {
			l, err := objects.OneTimeFromMSQueue(sim.Memory(), n)
			if err != nil {
				return nil, err
			}
			return passage(l), nil
		}},
	}
	for _, b := range backends {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sim, err := tso.NewSimulator(tso.Config{N: n}, b.build)
		if err != nil {
			return nil, fmt.Errorf("core: E6 %s: %w", b.name, err)
		}
		acc := rmr.Attach(sim, rmr.ModelCCWriteBack)
		res, err := tso.Run(sim, tso.NewRoundRobin(), 50_000_000)
		if err != nil || !res.Completed || res.Violation != nil {
			sim.Kill()
			return nil, fmt.Errorf("core: E6 %s: %v (violation %v)", b.name, err, res.Violation)
		}
		s := acc.Summarize()
		rep.Rows = append(rep.Rows, []string{
			b.name, itoa(s.MaxFences), f1(s.MeanFences), itoa(s.MaxRMRs), f1(s.MeanRMRs),
		})
		sim.Kill()
	}
	rep.Notes = append(rep.Notes,
		"each passage performs exactly one fetch&increment (dequeue/pop) plus O(1) extra fences, so lower bounds for one-time mutual exclusion transfer to counters, queues and stacks",
	)
	return rep, nil
}

func passage(l mutex.Lock) tso.Program {
	return func(p *tso.Proc) {
		l.Lock(p)
		p.CS()
		l.Unlock(p)
	}
}

// E7RMRModels regenerates the Section 2 cost-model comparison: RMRs per
// passage for representative locks under DSM, CC write-through and CC
// write-back.
func E7RMRModels(ctx context.Context, ns []int) (*Report, error) {
	rep := &Report{
		ID:     "E7",
		Title:  "RMRs/passage across machine models (Section 2)",
		Header: []string{"algorithm", "model"},
	}
	for _, n := range ns {
		rep.Header = append(rep.Header, fmt.Sprintf("N=%d", n))
	}
	algs := []struct {
		name    string
		factory mutex.Factory
	}{
		{"bakery", mutex.NewBakery},
		{"tournament", mutex.NewTournament},
		{"caschain", mutex.NewCASChain},
	}
	for _, a := range algs {
		for _, model := range rmr.Models() {
			row := []string{a.name, model.String()}
			for _, n := range ns {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				simModel := tso.CC
				if model == rmr.ModelDSM {
					simModel = tso.DSM
				}
				sim, err := tso.NewSimulator(tso.Config{N: n, Model: simModel}, mutex.Build(a.factory))
				if err != nil {
					return nil, fmt.Errorf("core: E7 %s %v N=%d: %w", a.name, model, n, err)
				}
				acc := rmr.Attach(sim, model)
				res, err := tso.Run(sim, tso.NewRoundRobin(), 100_000_000)
				if err != nil || !res.Completed || res.Violation != nil {
					sim.Kill()
					return nil, fmt.Errorf("core: E7 %s %v N=%d: %v (violation %v)", a.name, model, n, err, res.Violation)
				}
				row = append(row, f1(acc.Summarize().MeanRMRs))
				sim.Kill()
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	rep.Notes = append(rep.Notes,
		"expected shape: bakery Θ(N) in all models; tournament Θ(log N); caschain Θ(k)=Θ(N) here since all N contend",
	)
	return rep, nil
}

// E8FenceElision regenerates the motivation from [5] (fences are
// unavoidable): Peterson's algorithm with its fences elided violates mutual
// exclusion under TSO, while the fenced version survives the same
// schedules.
func E8FenceElision(ctx context.Context, seeds int) (*Report, error) {
	rep := &Report{
		ID:     "E8",
		Title:  "fence elision breaks Peterson under TSO ([5], laws of order)",
		Header: []string{"variant", "schedules tested", "violations found", "first violating schedule"},
	}
	run := func(factory mutex.Factory) (violations int, first string, err error) {
		// Deterministic delayed-commit schedule first.
		sim, err := tso.NewSimulator(tso.Config{N: 2}, mutex.Build(factory))
		if err != nil {
			return 0, "", err
		}
		res, err := tso.Run(sim, tso.NewRoundRobin(), 100000)
		if err != nil && res.Violation == nil && !sim.Done(0) {
			// Step budget without violation: treat as survived (the
			// fenceless lock can also livelock; only violations count).
			err = nil
		}
		if res.Violation != nil {
			violations++
			first = "round-robin (writes never committed)"
		}
		sim.Kill()
		for seed := int64(1); seed <= int64(seeds); seed++ {
			if err := ctx.Err(); err != nil {
				return violations, first, err
			}
			sim, err := tso.NewSimulator(tso.Config{N: 2, Passages: 2}, mutex.Build(factory))
			if err != nil {
				return violations, first, err
			}
			res, rerr := tso.Run(sim, tso.NewRandom(seed, 0.2), 500000)
			if rerr != nil && res.Violation == nil {
				// Budget exhaustion without violation: inconclusive
				// schedule; count as survived.
				rerr = nil
			}
			if res.Violation != nil {
				violations++
				if first == "" {
					first = fmt.Sprintf("random seed %d", seed)
				}
			}
			sim.Kill()
		}
		return violations, first, nil
	}
	for _, v := range []struct {
		name    string
		factory mutex.Factory
	}{
		{"peterson (fenced)", mutex.NewPeterson},
		{"peterson-nofence", mutex.NewPetersonNoFences},
	} {
		violations, first, err := run(v.factory)
		if err != nil {
			return nil, fmt.Errorf("core: E8 %s: %w", v.name, err)
		}
		if first == "" {
			first = "-"
		}
		rep.Rows = append(rep.Rows, []string{v.name, itoa(seeds + 1), itoa(violations), first})
	}
	rep.Notes = append(rep.Notes,
		"expected shape: zero violations with fences, violations without - store-load reordering lets both processes read the other's stale flag",
	)
	return rep, nil
}

// E9PSOSeparation regenerates the TSO/PSO separation of the paper's
// Section 6 discussion, in two halves:
//
//   - theory: by Inequality 3 (Attiya-Hendler-Woelfel), a PSO read/write
//     algorithm with r = log2 N RMRs needs ~log N / log log N fences, while
//     TSO admits O(1) fences at O(log N) RMRs [6];
//   - practice: the bakery variant without its ticket-publication fence is
//     verified exclusion-safe under every TSO schedule by the bounded model
//     checker, and broken by a PSO schedule that commits the choosing flag
//     before the ticket.
func E9PSOSeparation(ctx context.Context, log2Ns []float64, n int) (*Report, error) {
	rep := &Report{
		ID:     "E9",
		Title:  "TSO vs PSO separation (Section 6 discussion, Inequality 3)",
		Header: []string{"log2 N", "PSO min fences (r=log2 N)", "PSO min fences (r=log2^2 N)", "TSO fences [6]"},
	}
	renderFences := func(f int, maxF int) string {
		if f > maxF {
			return "impossible"
		}
		return itoa(f)
	}
	const maxF = 1 << 20
	for _, l2n := range log2Ns {
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%g", l2n),
			renderFences(bounds.MinPSOFences(l2n, l2n, maxF), maxF),
			renderFences(bounds.MinPSOFences(l2n*l2n, l2n, maxF), maxF),
			"O(1)",
		})
	}

	// Empirical half, machine-checked COMPLETELY on the fast VM engine:
	// the standard bakery (fenced doorway) is exclusion-safe under every
	// TSO schedule of one passage per process, and broken under PSO, where
	// the doorway's number/choosing writes can become visible out of issue
	// order before the fence drains them.
	prog, err := vmprog.Bakery(n, false)
	if err != nil {
		return nil, fmt.Errorf("core: E9 program: %w", err)
	}
	tsoEng, err := vmprog.NewEngineOrdering(prog, n, tso.TSO)
	if err != nil {
		return nil, err
	}
	tsoRes, err := tsoEng.Check(ctx, 0)
	if err != nil {
		return nil, fmt.Errorf("core: E9 TSO check: %w", err)
	}
	psoEng, err := vmprog.NewEngineOrdering(prog, n, tso.PSO)
	if err != nil {
		return nil, err
	}
	psoRes, err := psoEng.Check(ctx, 0)
	if err != nil {
		return nil, fmt.Errorf("core: E9 PSO check: %w", err)
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("bakery under TSO: violation=%v, complete=%v, states=%d (exhaustive over ALL schedules)",
			tsoRes.Violation, tsoRes.Complete, tsoRes.States),
		fmt.Sprintf("bakery under PSO: violation=%v (schedule length %d), states=%d",
			psoRes.Violation, len(psoRes.Schedule), psoRes.States),
		"expected shape: the same algorithm, fences placed for TSO, is exclusion-safe under every TSO schedule and broken by PSO's store-store reordering",
		"r = log2 N RMRs is infeasible under PSO at ANY fence count (f*log2(r/f)+1 < log2 N for all f <= r): the (O(1) fences, O(log N) RMRs) point of [6] exists only under TSO",
		"corrected finding: the bakery variant WITHOUT its ticket-publication fence is unsafe even under TSO (an unpublished ticket lets a competitor draw an equal ticket and win the tie-break); see internal/vmprog tests",
	)
	if tsoRes.Violation || !tsoRes.Complete {
		return nil, fmt.Errorf("core: E9: bakery TSO verification failed: violation=%v complete=%v", tsoRes.Violation, tsoRes.Complete)
	}
	if !psoRes.Violation {
		return nil, fmt.Errorf("core: E9: bakery did not violate under PSO")
	}
	return rep, nil
}

// E10Adaptivity measures the adaptivity function of each lock directly,
// against the paper's definition: an algorithm is f-adaptive when the
// critical events of a passage are bounded by f(total contention),
// independent of the number N of processes sharing the lock. For each lock
// and each participant count k, only k of the N processes run; the table
// reports the maximum critical events of any passage. Adaptive rows must be
// identical across N; non-adaptive rows grow with N.
func E10Adaptivity(ctx context.Context, ns []int, ks []int) (*Report, error) {
	rep := &Report{
		ID:     "E10",
		Title:  "measured adaptivity functions (Definitions, Section 1/2)",
		Header: []string{"algorithm", "N"},
	}
	for _, k := range ks {
		rep.Header = append(rep.Header, fmt.Sprintf("k=%d", k))
	}
	algs := []struct {
		name    string
		factory mutex.Factory
	}{
		{"bakery", mutex.NewBakery},
		{"yanganderson", mutex.NewYangAnderson},
		{"caschain", mutex.NewCASChain},
		{"synthetic", mutex.NewSynthetic},
	}
	for _, a := range algs {
		for _, n := range ns {
			row := []string{a.name, itoa(n)}
			for _, k := range ks {
				if k > n {
					row = append(row, "-")
					continue
				}
				crit, err := maxCriticalWithParticipants(ctx, a.factory, n, k)
				if err != nil {
					return nil, fmt.Errorf("core: E10 %s n=%d k=%d: %w", a.name, n, k, err)
				}
				row = append(row, itoa(crit))
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	rep.Notes = append(rep.Notes,
		"cells are max critical events per passage when only k of N processes participate (lock-step schedule)",
		"expected shape: adaptive locks (caschain, synthetic) have identical rows for both N - their cost is a function of k alone; bakery and yanganderson scale with N",
	)
	return rep, nil
}

// maxCriticalWithParticipants runs processes 0..k-1 of an N-process lock in
// lock-step until all complete and returns the max critical events of any
// passage.
func maxCriticalWithParticipants(ctx context.Context, f mutex.Factory, n, k int) (int, error) {
	sim, err := tso.NewSimulator(tso.Config{N: n}, mutex.Build(f))
	if err != nil {
		return 0, err
	}
	defer sim.Kill()
	acc := rmr.Attach(sim, rmr.ModelCCWriteBack)
	for guard := 0; ; guard++ {
		if guard > 100_000_000 {
			return 0, fmt.Errorf("lock-step run did not finish")
		}
		if guard&0xffff == 0 {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
		}
		progressed := false
		for id := tso.ProcID(0); id < tso.ProcID(k); id++ {
			if sim.Done(id) {
				continue
			}
			if _, err := sim.Step(id); err != nil {
				return 0, err
			}
			progressed = true
		}
		if !progressed {
			break
		}
	}
	if v := sim.ExclusionViolation(); v != nil {
		return 0, fmt.Errorf("exclusion violated: %v", v)
	}
	max := 0
	for id := tso.ProcID(0); id < tso.ProcID(k); id++ {
		for _, ps := range acc.Passages(id) {
			if ps.Critical > max {
				max = ps.Critical
			}
		}
	}
	return max, nil
}

// fastReduce is the reduction mode E11's fast-engine runs verify under;
// cmd/priceadaptive's -reduce flag overrides the default. Every mode is
// sound (the registry-wide differential harness in internal/check holds
// them to identical verdicts), so the knob only trades exploration size
// against per-state canonicalization work.
var fastReduce = check.ReduceFull

// SetFastReduce selects the fast-engine reduction mode for subsequent
// experiment runs.
func SetFastReduce(mode check.ReduceMode) { fastReduce = mode }

// fastWorkers is the worker count E11's fast-engine runs use: 0 keeps the
// sequential engine (and its pinned state counts); a positive count runs
// the parallel sharded frontier checker, whose verdicts are identical.
// cmd/priceadaptive's -workers flag overrides the default.
var fastWorkers = 0

// SetFastWorkers selects the fast-engine worker count for subsequent
// experiment runs (0 = sequential).
func SetFastWorkers(n int) { fastWorkers = n }

// E11VerificationMatrix runs the fast VM engine's complete model checker
// over every VM lock program under both memory orderings, producing the
// repository's verification record: which algorithms are exclusion-safe
// under which ordering, each verdict either an exhaustive proof over the
// full reachable state space or a concrete counterexample schedule.
func E11VerificationMatrix(ctx context.Context) (*Report, error) {
	rep := &Report{
		ID:     "E11",
		Title:  "model-checking verification matrix (fast VM engine, N=2, one passage)",
		Header: []string{"program", "ordering", "verdict", "states", "schedule"},
	}
	programs := []*vmprog.Program{
		vmprog.MustPeterson(true),
		vmprog.MustPeterson(false),
		vmprog.MustDekker(true),
		vmprog.MustDekker(false),
		vmprog.MustTAS(),
		vmprog.MustBakery(2, false),
		vmprog.MustBakery(2, true),
		vmprog.MustLamportFast(2),
	}
	for _, p := range programs {
		for _, ord := range []tso.Ordering{tso.TSO, tso.PSO} {
			ordering := ord.String()
			res, err := check.Verify(ctx, p, 2,
				check.WithOrdering(ord),
				check.WithMaxStates(4_000_000),
				check.WithReduce(fastReduce),
				check.WithWorkers(fastWorkers))
			if err != nil {
				return nil, fmt.Errorf("core: E11 %s/%s: %w", p.Name, ordering, err)
			}
			verdict := "SAFE (exhaustive)"
			schedule := "-"
			switch {
			case res.Violation:
				verdict = "VIOLATED"
				schedule = fmt.Sprintf("%d decisions", len(res.Schedule))
			case !res.Complete:
				verdict = "safe within budget (partial)"
			}
			rep.Rows = append(rep.Rows, []string{p.Name, ordering, verdict, itoa(res.States), schedule})
		}
	}
	rep.Notes = append(rep.Notes,
		"SAFE (exhaustive) means every reachable state of the program under that ordering was visited without two CS events becoming enabled together",
		"expected shape: fenced locks safe under TSO; fence-free variants violated under TSO; bakery's TSO fences do not survive PSO (its doorway relies on store order before the fence); TAS (CAS-based) safe under both",
	)
	return rep, nil
}
