package core

import (
	"context"
	"strconv"
	"strings"
	"testing"
)

func TestExperimentRegistry(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 11 {
		t.Fatalf("experiments = %v, want 11", ids)
	}
	seen := map[string]bool{}
	for _, id := range ids {
		seen[id] = true
	}
	for i := 1; i <= 11; i++ {
		if !seen["e"+strconv.Itoa(i)] {
			t.Errorf("missing experiment e%d (have %v)", i, ids)
		}
	}
}

func TestE1ConstructionReport(t *testing.T) {
	rep, err := E1Construction(context.Background(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) < 3 {
		t.Fatalf("E1 rows = %d, want >= 3", len(rep.Rows))
	}
	if rep.Rows[0][1] != "read" || rep.Rows[1][1] != "write" || rep.Rows[2][1] != "regularize" {
		t.Errorf("phase order wrong: %v", rep.Rows[:3])
	}
	out := rep.String()
	if !strings.Contains(out, "E1") || !strings.Contains(out, "regularize") {
		t.Errorf("rendered report missing content:\n%s", out)
	}
}

func TestE2FencesForcedGrowth(t *testing.T) {
	rep, err := E2FencesForced(context.Background(), []int{4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	f4, _ := strconv.Atoi(rep.Rows[0][1])
	f16, _ := strconv.Atoi(rep.Rows[1][1])
	if f16 <= f4 {
		t.Errorf("forced fences must grow with N: %d -> %d", f4, f16)
	}
	for _, row := range rep.Rows {
		if row[3] != "true" {
			t.Errorf("witness not verified at N=%s: %v", row[0], row)
		}
	}
}

func TestE3SeparationShape(t *testing.T) {
	rep, err := E3Separation(context.Background(), []int{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string][]string{}
	for _, row := range rep.Rows {
		byName[row[0]] = row
	}
	bak := byName["bakery"]
	if bak[2] != "3" || bak[3] != "3" {
		t.Errorf("bakery fences must be flat at 3: %v", bak)
	}
	cc := byName["caschain"]
	lo, _ := strconv.Atoi(cc[2])
	hi, _ := strconv.Atoi(cc[3])
	if hi <= lo {
		t.Errorf("caschain fences must grow with k: %v", cc)
	}
	syn := byName["synthetic"]
	lo, _ = strconv.Atoi(syn[2])
	hi, _ = strconv.Atoi(syn[3])
	if hi <= lo {
		t.Errorf("synthetic fences must grow with k: %v", syn)
	}
}

func TestE4E5BoundTables(t *testing.T) {
	e4 := E4LinearBound([]float64{16, 1 << 20})
	if len(e4.Rows) != 2 {
		t.Fatalf("E4 rows = %d", len(e4.Rows))
	}
	lo, _ := strconv.Atoi(e4.Rows[0][1])
	hi, _ := strconv.Atoi(e4.Rows[1][1])
	if hi <= lo {
		t.Errorf("E4 forced fences must grow: %d -> %d", lo, hi)
	}
	e5 := E5ExpBound([]float64{16, 1 << 20})
	lo5, _ := strconv.Atoi(e5.Rows[0][1])
	hi5, _ := strconv.Atoi(e5.Rows[1][1])
	if hi5 < lo5 {
		t.Errorf("E5 forced fences must not shrink: %d -> %d", lo5, hi5)
	}
	// Exponential adaptivity escapes with fewer forced fences than linear.
	if hi5 > hi {
		t.Errorf("exponential forced (%d) must be <= linear forced (%d)", hi5, hi)
	}
}

func TestE6ReductionConstantOverhead(t *testing.T) {
	rep, err := E6Reduction(context.Background(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 6 {
		t.Fatalf("backends = %d, want 6", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		maxFences, _ := strconv.Atoi(row[1])
		if maxFences < 2 {
			t.Errorf("%s: fences = %d, implausibly low", row[0], maxFences)
		}
	}
	// The bakery-backed counter op costs 3 fences; Algorithm 1 may add at
	// most a constant (3) on top.
	for _, row := range rep.Rows {
		if row[0] != "locked-counter(bakery)" {
			continue
		}
		maxFences, _ := strconv.Atoi(row[1])
		if maxFences > 6 {
			t.Errorf("Lemma 9 additive constant exceeded: %v", row)
		}
	}
}

func TestE7RMRShape(t *testing.T) {
	rep, err := E7RMRModels(context.Background(), []int{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	// Bakery mean RMRs must grow with N under every model.
	for _, row := range rep.Rows {
		if row[0] != "bakery" {
			continue
		}
		lo, _ := strconv.ParseFloat(row[2], 64)
		hi, _ := strconv.ParseFloat(row[3], 64)
		if hi <= lo {
			t.Errorf("bakery RMRs must grow with N under %s: %v", row[1], row)
		}
	}
}

func TestE8FenceElision(t *testing.T) {
	rep, err := E8FenceElision(context.Background(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	fenced, nofence := rep.Rows[0], rep.Rows[1]
	if fenced[2] != "0" {
		t.Errorf("fenced Peterson must have zero violations: %v", fenced)
	}
	v, _ := strconv.Atoi(nofence[2])
	if v == 0 {
		t.Errorf("fence-free Peterson must violate at least once: %v", nofence)
	}
}

func TestReportRendering(t *testing.T) {
	rep := &Report{
		ID:     "EX",
		Title:  "test",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}},
		Notes:  []string{"hello"},
	}
	out := rep.String()
	for _, want := range []string{"== EX: test ==", "a", "1", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestAllDefaultRunnersSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment at default size")
	}
	for id, run := range Experiments() {
		rep, err := run(context.Background())
		if err != nil {
			t.Errorf("%s: %v", id, err)
			continue
		}
		if len(rep.Rows) == 0 {
			t.Errorf("%s: empty report", id)
		}
	}
}

func TestE9PSOSeparation(t *testing.T) {
	rep, err := E9PSOSeparation(context.Background(), []float64{16, 1 << 10}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if row[1] != "impossible" {
			t.Errorf("r=log2N must be infeasible under PSO: %v", row)
		}
	}
	foundPSO := false
	for _, n := range rep.Notes {
		if strings.Contains(n, "under PSO: violation=true") {
			foundPSO = true
		}
		if strings.Contains(n, "under TSO: violation=true") {
			t.Errorf("TSO must not violate: %s", n)
		}
	}
	if !foundPSO {
		t.Error("PSO violation note missing")
	}
}

func TestE10AdaptivityShape(t *testing.T) {
	rep, err := E10Adaptivity(context.Background(), []int{8, 32}, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string][]string{}
	for _, row := range rep.Rows {
		rows[row[0]+"/"+row[1]] = row
	}
	// Adaptive locks: identical rows across N.
	for _, alg := range []string{"caschain", "synthetic"} {
		small, big := rows[alg+"/8"], rows[alg+"/32"]
		for c := 2; c < len(small); c++ {
			if small[c] != big[c] {
				t.Errorf("%s row differs across N: %v vs %v", alg, small, big)
			}
		}
	}
	// Bakery: strictly larger at bigger N for every k.
	small, big := rows["bakery/8"], rows["bakery/32"]
	for c := 2; c < len(small); c++ {
		lo, _ := strconv.Atoi(small[c])
		hi, _ := strconv.Atoi(big[c])
		if hi <= lo {
			t.Errorf("bakery cost must grow with N at column %d: %v vs %v", c, small, big)
		}
	}
}
