package graphs

import (
	"math/rand"
	"testing"
	"testing/quick"

	"priceadaptive/internal/tso"
)

func ids(n int) []tso.ProcID {
	out := make([]tso.ProcID, n)
	for i := range out {
		out[i] = tso.ProcID(i)
	}
	return out
}

func TestEmptyGraph(t *testing.T) {
	g := New(nil)
	if g.NumVertices() != 0 || g.TuranBound() != 0 {
		t.Error("empty graph basics wrong")
	}
	if got := g.IndependentSet(); len(got) != 0 {
		t.Errorf("IndependentSet = %v, want empty", got)
	}
}

func TestEdgelessGraphIsFullyIndependent(t *testing.T) {
	g := New(ids(7))
	is := g.IndependentSet()
	if len(is) != 7 {
		t.Fatalf("independent set = %d, want 7", len(is))
	}
	if g.TuranBound() != 7 {
		t.Errorf("TuranBound = %d, want 7", g.TuranBound())
	}
}

func TestEdgeBasics(t *testing.T) {
	g := New(ids(4))
	g.AddEdge(0, 1)
	g.AddEdge(1, 0) // duplicate
	g.AddEdge(2, 2) // self-loop ignored
	g.AddEdge(0, 9) // outside vertex set ignored
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d, want 1", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("edge must be undirected")
	}
	if g.Degree(0) != 1 || g.Degree(2) != 0 {
		t.Error("degrees wrong")
	}
	if got := g.AverageDegree(); got != 0.5 {
		t.Errorf("average degree = %v, want 0.5", got)
	}
}

func TestCompleteGraphIndependentSetIsSingleton(t *testing.T) {
	g := New(ids(5))
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			g.AddEdge(tso.ProcID(i), tso.ProcID(j))
		}
	}
	is := g.IndependentSet()
	if len(is) != 1 {
		t.Fatalf("independent set of K5 = %v, want singleton", is)
	}
	if g.TuranBound() != 1 {
		t.Errorf("TuranBound = %d, want 1", g.TuranBound())
	}
}

func TestStarGraph(t *testing.T) {
	// Star: center 0 connected to 1..9. Independent set = the 9 leaves.
	g := New(ids(10))
	for i := 1; i < 10; i++ {
		g.AddEdge(0, tso.ProcID(i))
	}
	is := g.IndependentSet()
	if len(is) != 9 {
		t.Fatalf("independent set = %v, want 9 leaves", is)
	}
	for _, v := range is {
		if v == 0 {
			t.Error("center must not be in the leaf independent set")
		}
	}
}

func TestIndependentSetIsIndependentAndMeetsTuran(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(40)
		g := New(ids(n))
		edges := rng.Intn(n * 2)
		for e := 0; e < edges; e++ {
			g.AddEdge(tso.ProcID(rng.Intn(n)), tso.ProcID(rng.Intn(n)))
		}
		is := g.IndependentSet()
		for i := 0; i < len(is); i++ {
			for j := i + 1; j < len(is); j++ {
				if g.HasEdge(is[i], is[j]) {
					t.Fatalf("trial %d: edge inside independent set: %v-%v", trial, is[i], is[j])
				}
			}
		}
		if len(is) < g.TuranBound() {
			t.Fatalf("trial %d: |IS|=%d < Turán bound %d (n=%d, e=%d)",
				trial, len(is), g.TuranBound(), n, g.NumEdges())
		}
	}
}

func TestIndependentSetDeterministic(t *testing.T) {
	mk := func() []tso.ProcID {
		g := New(ids(12))
		g.AddEdge(0, 1)
		g.AddEdge(1, 2)
		g.AddEdge(3, 4)
		g.AddEdge(5, 6)
		g.AddEdge(6, 7)
		return g.IndependentSet()
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatal("non-deterministic size")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic membership")
		}
	}
}

func TestTuranBoundQuick(t *testing.T) {
	// Property: for any graph on n<=30 vertices with arbitrary edges, the
	// greedy independent set meets the Turán bound ceil(n^2/(2e+n)).
	f := func(n uint8, pairs []uint16) bool {
		size := int(n%30) + 1
		g := New(ids(size))
		for _, pr := range pairs {
			u := tso.ProcID(int(pr>>8) % size)
			v := tso.ProcID(int(pr&0xff) % size)
			g.AddEdge(u, v)
		}
		return len(g.IndependentSet()) >= g.TuranBound()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
