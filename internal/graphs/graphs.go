// Package graphs provides the small amount of graph machinery the
// lower-bound construction needs: undirected conflict graphs over process
// IDs and an independent-set routine with the Turán guarantee (Theorem 2 of
// the paper: a graph with average degree d has an independent set of at
// least ceil(|V|/(d+1)) vertices).
package graphs

import (
	"sort"

	"priceadaptive/internal/tso"
)

// Graph is an undirected graph whose vertices are process IDs. Self-loops
// and duplicate edges are ignored.
type Graph struct {
	adj   map[tso.ProcID]map[tso.ProcID]bool
	verts []tso.ProcID
	edges int
}

// New returns a graph over the given vertex set.
func New(vertices []tso.ProcID) *Graph {
	g := &Graph{adj: make(map[tso.ProcID]map[tso.ProcID]bool, len(vertices))}
	g.verts = make([]tso.ProcID, len(vertices))
	copy(g.verts, vertices)
	sort.Slice(g.verts, func(i, j int) bool { return g.verts[i] < g.verts[j] })
	for _, v := range g.verts {
		g.adj[v] = make(map[tso.ProcID]bool)
	}
	return g
}

// AddEdge inserts the undirected edge {u, v}. Endpoints outside the vertex
// set and self-loops are ignored, matching the construction's habit of
// "adding an edge {p, q} if such a q exists".
func (g *Graph) AddEdge(u, v tso.ProcID) {
	if u == v {
		return
	}
	au, ok := g.adj[u]
	if !ok {
		return
	}
	av, ok := g.adj[v]
	if !ok {
		return
	}
	if au[v] {
		return
	}
	au[v] = true
	av[u] = true
	g.edges++
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return len(g.verts) }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return g.edges }

// Degree returns the degree of v.
func (g *Graph) Degree(v tso.ProcID) int { return len(g.adj[v]) }

// AverageDegree returns 2|E|/|V|, or 0 for the empty graph.
func (g *Graph) AverageDegree() float64 {
	if len(g.verts) == 0 {
		return 0
	}
	return 2 * float64(g.edges) / float64(len(g.verts))
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v tso.ProcID) bool { return g.adj[u][v] }

// TuranBound returns the independent-set size guaranteed by Turán's theorem:
// ceil(|V| / (d+1)) where d is the average degree.
func (g *Graph) TuranBound() int {
	n := len(g.verts)
	if n == 0 {
		return 0
	}
	// ceil(n / (d+1)) with d = 2e/n computed in integers:
	// n / (2e/n + 1) = n^2 / (2e + n).
	num := n * n
	den := 2*g.edges + n
	return (num + den - 1) / den
}

// IndependentSet returns an independent set of size at least TuranBound(),
// computed by the classic greedy minimum-degree argument (repeatedly pick a
// minimum-degree vertex and delete its neighbourhood). The result is sorted
// ascending. Ties are broken by smallest ID, so the routine is
// deterministic.
func (g *Graph) IndependentSet() []tso.ProcID {
	// Work on a mutable copy of the degree structure.
	deg := make(map[tso.ProcID]int, len(g.verts))
	alive := make(map[tso.ProcID]bool, len(g.verts))
	for _, v := range g.verts {
		deg[v] = len(g.adj[v])
		alive[v] = true
	}
	var out []tso.ProcID
	remaining := len(g.verts)
	for remaining > 0 {
		// Find the minimum-degree alive vertex (smallest ID on ties).
		best := tso.ProcID(-1)
		bestDeg := -1
		for _, v := range g.verts {
			if !alive[v] {
				continue
			}
			if bestDeg < 0 || deg[v] < bestDeg || (deg[v] == bestDeg && v < best) {
				best, bestDeg = v, deg[v]
			}
		}
		out = append(out, best)
		// Remove best and its neighbourhood.
		kill := []tso.ProcID{best}
		for u := range g.adj[best] {
			if alive[u] {
				kill = append(kill, u)
			}
		}
		for _, u := range kill {
			alive[u] = false
			remaining--
			for w := range g.adj[u] {
				if alive[w] {
					deg[w]--
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
