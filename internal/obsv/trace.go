package obsv

import (
	"fmt"
	"sort"
	"sync"
)

// Span is one passage attempt by one process: it opens on Enter (or Recover)
// and closes on Exit or a crash. Start/End are logical timestamps (event
// sequence numbers). Annotations carry integer facts attached after the run,
// keyed by name (internal/rmr writes rmr_dsm / rmr_ccwt / rmr_ccwb).
type Span struct {
	Proc    int
	Passage int
	Start   int
	End     int
	// Complete is true once Exit was observed; Crashed marks attempts that
	// ended in a crash-stop failure (their recovery is a separate span).
	Complete bool
	Crashed  bool
	// Events, Critical and Fences count the span's events by class.
	Events   int
	Critical int
	Fences   int
	// Recovery marks spans opened by a Recover transition rather than Enter.
	Recovery bool
	// Annotations holds named integer facts (e.g. per-model RMR counts).
	Annotations map[string]int
}

// FenceSpan is one fence interval inside a passage: BeginFence to EndFence.
type FenceSpan struct {
	Proc       int
	Start, End int
}

// PhaseSpan is a coarse span recorded by non-simulator components — the
// adversary's construction phases and the model checker's deepening
// iterations. Args carry named integer facts shown in the trace viewer.
type PhaseSpan struct {
	Name       string
	Start, End int
	Args       map[string]int
}

// Instant is a point event (crash, recover) shown as a trace instant.
type Instant struct {
	Proc int
	Seq  int
	Name string
}

// Tracer is a Sink that assembles the event stream into spans. It is safe
// for concurrent Emit calls (the simulator emits from per-process
// goroutines serialized by the scheduler, but replays and tests may not be).
type Tracer struct {
	mu sync.Mutex
	// spans[p] lists process p's passage attempts in emission order; crash
	// retries of the same passage index are separate entries.
	spans    map[int][]*Span // guarded by mu
	open     map[int]*Span   // guarded by mu
	fences   []FenceSpan     // guarded by mu
	openF    map[int]int     // guarded by mu
	phases   []PhaseSpan     // guarded by mu
	instants []Instant       // guarded by mu
	events   int             // guarded by mu
	maxSeq   int             // guarded by mu
}

// NewTracer returns an empty Tracer.
func NewTracer() *Tracer {
	return &Tracer{
		spans: make(map[int][]*Span),
		open:  make(map[int]*Span),
		openF: make(map[int]int),
	}
}

// Emit implements Sink.
func (t *Tracer) Emit(e SimEvent) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events++
	if e.Seq > t.maxSeq {
		t.maxSeq = e.Seq
	}
	switch e.Kind {
	case KEnter, KRecover:
		sp := &Span{
			Proc:     e.Proc,
			Passage:  e.Passage,
			Start:    e.Seq,
			End:      e.Seq,
			Recovery: e.Kind == KRecover,
		}
		t.spans[e.Proc] = append(t.spans[e.Proc], sp)
		t.open[e.Proc] = sp
		if e.Kind == KRecover {
			t.instants = append(t.instants, Instant{Proc: e.Proc, Seq: e.Seq, Name: "recover"})
		}
		t.count(sp, e)
	case KCrash:
		t.instants = append(t.instants, Instant{Proc: e.Proc, Seq: e.Seq, Name: "crash"})
		if sp := t.open[e.Proc]; sp != nil {
			sp.End = e.Seq
			sp.Crashed = true
			t.count(sp, e)
			delete(t.open, e.Proc)
		}
		delete(t.openF, e.Proc)
	case KExit:
		if sp := t.open[e.Proc]; sp != nil {
			sp.End = e.Seq
			sp.Complete = true
			t.count(sp, e)
			delete(t.open, e.Proc)
		}
	case KBeginFence:
		t.openF[e.Proc] = e.Seq
		if sp := t.open[e.Proc]; sp != nil {
			sp.Fences++
			t.count(sp, e)
		}
	case KEndFence:
		if start, ok := t.openF[e.Proc]; ok {
			t.fences = append(t.fences, FenceSpan{Proc: e.Proc, Start: start, End: e.Seq})
			delete(t.openF, e.Proc)
		}
		if sp := t.open[e.Proc]; sp != nil {
			t.count(sp, e)
		}
	default:
		if sp := t.open[e.Proc]; sp != nil {
			sp.End = e.Seq
			t.count(sp, e)
		}
	}
}

func (t *Tracer) count(sp *Span, e SimEvent) {
	sp.Events++
	if e.Critical {
		sp.Critical++
	}
	if e.Seq > sp.End {
		sp.End = e.Seq
	}
}

// Annotate attaches a named integer fact to process p's attempt-th span
// (emission order, 0-based). It is a no-op if the span does not exist.
func (t *Tracer) Annotate(p, attempt int, key string, val int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	sps := t.spans[p]
	if attempt < 0 || attempt >= len(sps) {
		return
	}
	sp := sps[attempt]
	if sp.Annotations == nil {
		sp.Annotations = make(map[string]int)
	}
	sp.Annotations[key] = val
}

// Phase records a coarse named span (adversary phase, checker iteration).
func (t *Tracer) Phase(name string, start, end int, args map[string]int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.phases = append(t.phases, PhaseSpan{Name: name, Start: start, End: end, Args: args})
	if end > t.maxSeq {
		t.maxSeq = end
	}
}

// Spans returns process p's spans in emission order.
func (t *Tracer) Spans(p int) []*Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span(nil), t.spans[p]...)
}

// Procs returns the traced process ids, sorted.
func (t *Tracer) Procs() []int {
	t.mu.Lock()
	defer t.mu.Unlock()
	ps := make([]int, 0, len(t.spans))
	for p := range t.spans {
		ps = append(ps, p)
	}
	sort.Ints(ps)
	return ps
}

// Events returns the total number of events consumed.
func (t *Tracer) Events() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.events
}

// snapshot returns a consistent copy of the tracer state for exporters.
func (t *Tracer) snapshot() (procs []int, spans map[int][]*Span, fences []FenceSpan, phases []PhaseSpan, instants []Instant, maxSeq int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	spans = make(map[int][]*Span, len(t.spans))
	for p, sps := range t.spans {
		procs = append(procs, p)
		spans[p] = append([]*Span(nil), sps...)
	}
	sort.Ints(procs)
	return procs, spans, append([]FenceSpan(nil), t.fences...),
		append([]PhaseSpan(nil), t.phases...),
		append([]Instant(nil), t.instants...), t.maxSeq
}

// spanName labels a span in exports: "passage 2" or "passage 2 (recovery)".
func spanName(sp *Span) string {
	name := fmt.Sprintf("passage %d", sp.Passage)
	if sp.Recovery {
		name += " (recovery)"
	}
	return name
}
