// Package obsv is the repository's zero-dependency observability layer:
// execution tracing for the TSO simulator and a Prometheus text-format
// metrics registry. Every runtime component emits into it — the simulator
// (internal/tso) streams events into a Sink, the lower-bound construction
// (internal/adversary) and the model checker (internal/check) record phase
// spans, and the job queue (internal/jobs) backs its counters, gauges and
// latency histograms with a Registry that cmd/padserver serves at
// /v1/metrics.
//
// The package deliberately imports nothing outside the standard library so
// that every other package may depend on it without cycles, and the hot
// emit path is a single nil check plus one interface call so that a nil
// sink costs nothing in the simulator loop (benchmarked in internal/check).
//
// Tracing model: one span per passage attempt per process, opened by the
// Enter (or Recover) transition and closed by Exit (or a crash). Spans carry
// fence, critical-event and event counts accumulated from the stream, plus
// arbitrary integer annotations (internal/rmr attaches per-model RMR counts
// after a run). Traces export as Chrome trace_event JSON — loadable in
// chrome://tracing or Perfetto — and as a compact text profile.
//
// Metric naming convention: every metric is prefixed pad_, uses base units
// (seconds, bytes), and counters end in _total. See DESIGN.md section 9.
package obsv

// EventKind enumerates the simulator event classes a Sink receives. The
// values mirror the operational model of internal/tso but are defined here
// so the sink interface stays dependency-free.
type EventKind uint8

// Simulator event kinds.
const (
	// KEnter is the Enter transition: non-critical section -> entry.
	KEnter EventKind = iota + 1
	// KRead is a read (from buffer, cache, or shared memory).
	KRead
	// KWriteIssue buffers a write; it is not yet visible.
	KWriteIssue
	// KWriteCommit makes a buffered write visible.
	KWriteCommit
	// KBeginFence starts a fence (the buffer drains before it ends).
	KBeginFence
	// KEndFence completes a fence with an empty buffer.
	KEndFence
	// KCAS is a serializing compare-and-swap.
	KCAS
	// KCS is the critical-section transition.
	KCS
	// KExit is the Exit transition: the passage completed.
	KExit
	// KCrash is a crash-stop failure; volatile state is lost.
	KCrash
	// KRecover re-enters the interrupted passage after a crash.
	KRecover
)

// String returns the mnemonic used in trace exports.
func (k EventKind) String() string {
	switch k {
	case KEnter:
		return "Enter"
	case KRead:
		return "Read"
	case KWriteIssue:
		return "WriteIssue"
	case KWriteCommit:
		return "Commit"
	case KBeginFence:
		return "BeginFence"
	case KEndFence:
		return "EndFence"
	case KCAS:
		return "CAS"
	case KCS:
		return "CS"
	case KExit:
		return "Exit"
	case KCrash:
		return "Crash"
	case KRecover:
		return "Recover"
	default:
		return "EventKind(?)"
	}
}

// SimEvent is one simulator event as seen by a Sink. Timestamps are logical:
// Seq is the event's position in the execution, which doubles as the
// microsecond timestamp in Chrome trace exports.
type SimEvent struct {
	// Seq is the global sequence number (logical time).
	Seq int
	// Proc is the executing process, Passage its passage index.
	Proc    int
	Passage int
	// Kind is the event class.
	Kind EventKind
	// Var is the variable index touched, or -1 for transition/fence events.
	Var int
	// Val is the value read, written, or stored.
	Val uint64
	// Critical, Fence, Remote and FromBuffer carry the paper's event
	// classification (Definitions 2 and 3).
	Critical   bool
	Fence      bool
	Remote     bool
	FromBuffer bool
}

// Sink consumes a simulator event stream. Implementations must be cheap:
// Emit sits on the simulator's hot path. A nil Sink disables emission
// entirely (the producer checks for nil before calling).
type Sink interface {
	Emit(e SimEvent)
}

// CountSink counts events; it is the cheapest possible non-nil sink and is
// used to benchmark the sink dispatch overhead.
type CountSink struct {
	// Events counts every emitted event.
	Events int64
}

// Emit implements Sink.
func (c *CountSink) Emit(SimEvent) { c.Events++ }

// MultiSink fans one stream out to several sinks.
type MultiSink []Sink

// Emit implements Sink.
func (m MultiSink) Emit(e SimEvent) {
	for _, s := range m {
		s.Emit(e)
	}
}
