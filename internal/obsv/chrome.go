package obsv

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// WriteChromeTrace serializes the trace in Chrome trace_event JSON (the
// {"traceEvents":[...]} object form), loadable in chrome://tracing and
// Perfetto. Logical sequence numbers become microsecond timestamps.
//
// Layout: pid 0 with one thread per process. Each passage attempt is a
// complete ("X") event carrying fence/critical/event counts and any
// annotations as args; fences are nested "X" events; crashes and recoveries
// are instant ("i") events; adversary/checker phases render on a dedicated
// "phases" thread. Output is deterministic for a given trace: events are
// sorted by (thread, start, name) and args by key, so fixed-seed runs are
// byte-stable (golden-tested in cmd/tsosim).
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	procs, spans, fences, phases, instants, _ := t.snapshot()

	bw := bufio.NewWriter(w)
	bw.WriteString("{\"traceEvents\":[\n")
	first := true
	emit := func(line string) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.WriteString(line)
	}

	// Thread metadata: one lane per process, plus a phases lane when used.
	for _, p := range procs {
		emit(fmt.Sprintf("{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":\"proc %d\"}}", p, p))
	}
	const phaseTid = 1000
	if len(phases) > 0 {
		emit(fmt.Sprintf("{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":\"phases\"}}", phaseTid))
	}

	for _, p := range procs {
		for _, sp := range spans[p] {
			dur := sp.End - sp.Start
			if dur < 1 {
				dur = 1
			}
			args := map[string]int{
				"events":   sp.Events,
				"critical": sp.Critical,
				"fences":   sp.Fences,
			}
			if sp.Crashed {
				args["crashed"] = 1
			}
			for k, v := range sp.Annotations {
				args[k] = v
			}
			emit(fmt.Sprintf("{\"ph\":\"X\",\"name\":%q,\"cat\":\"passage\",\"pid\":0,\"tid\":%d,\"ts\":%d,\"dur\":%d,\"args\":%s}",
				spanName(sp), p, sp.Start, dur, argsJSON(args)))
		}
	}

	sort.Slice(fences, func(i, j int) bool {
		if fences[i].Proc != fences[j].Proc {
			return fences[i].Proc < fences[j].Proc
		}
		return fences[i].Start < fences[j].Start
	})
	for _, f := range fences {
		dur := f.End - f.Start
		if dur < 1 {
			dur = 1
		}
		emit(fmt.Sprintf("{\"ph\":\"X\",\"name\":\"fence\",\"cat\":\"fence\",\"pid\":0,\"tid\":%d,\"ts\":%d,\"dur\":%d}",
			f.Proc, f.Start, dur))
	}

	sort.Slice(instants, func(i, j int) bool {
		if instants[i].Proc != instants[j].Proc {
			return instants[i].Proc < instants[j].Proc
		}
		if instants[i].Seq != instants[j].Seq {
			return instants[i].Seq < instants[j].Seq
		}
		return instants[i].Name < instants[j].Name
	})
	for _, in := range instants {
		emit(fmt.Sprintf("{\"ph\":\"i\",\"name\":%q,\"cat\":\"failure\",\"pid\":0,\"tid\":%d,\"ts\":%d,\"s\":\"t\"}",
			in.Name, in.Proc, in.Seq))
	}

	for _, ph := range phases {
		dur := ph.End - ph.Start
		if dur < 1 {
			dur = 1
		}
		emit(fmt.Sprintf("{\"ph\":\"X\",\"name\":%q,\"cat\":\"phase\",\"pid\":0,\"tid\":%d,\"ts\":%d,\"dur\":%d,\"args\":%s}",
			ph.Name, phaseTid, ph.Start, dur, argsJSON(ph.Args)))
	}

	bw.WriteString("\n],\"displayTimeUnit\":\"ms\"}\n")
	return bw.Flush()
}

// argsJSON renders an int map as a JSON object with sorted keys, so output
// is deterministic.
func argsJSON(m map[string]int) string {
	if len(m) == 0 {
		return "{}"
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := "{"
	for i, k := range keys {
		if i > 0 {
			out += ","
		}
		out += fmt.Sprintf("%q:%d", k, m[k])
	}
	return out + "}"
}
