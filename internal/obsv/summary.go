package obsv

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteSummary renders the compact text profile (tsosim -trace-summary):
// per-process passage/fence/critical-event totals and, when spans carry RMR
// annotations, a per-model RMR breakdown.
func (t *Tracer) WriteSummary(w io.Writer) error {
	procs, spans, _, phases, _, maxSeq := t.snapshot()

	totalSpans, totalEvents := 0, 0
	annKeys := map[string]bool{}
	for _, p := range procs {
		for _, sp := range spans[p] {
			totalSpans++
			totalEvents += sp.Events
			for k := range sp.Annotations {
				annKeys[k] = true
			}
		}
	}
	fmt.Fprintf(w, "trace: %d proc(s), %d passage span(s), %d event(s), horizon %d\n",
		len(procs), totalSpans, totalEvents, maxSeq)

	keys := make([]string, 0, len(annKeys))
	for k := range annKeys {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	header := "proc  spans  complete  crashed  fences  critical  events"
	for _, k := range keys {
		header += fmt.Sprintf("  %s", k)
	}
	fmt.Fprintln(w, header)
	fmt.Fprintln(w, strings.Repeat("-", len(header)))
	for _, p := range procs {
		var complete, crashed, fences, critical, events int
		ann := make(map[string]int)
		for _, sp := range spans[p] {
			if sp.Complete {
				complete++
			}
			if sp.Crashed {
				crashed++
			}
			fences += sp.Fences
			critical += sp.Critical
			events += sp.Events
			for k, v := range sp.Annotations {
				ann[k] += v
			}
		}
		row := fmt.Sprintf("%4d  %5d  %8d  %7d  %6d  %8d  %6d",
			p, len(spans[p]), complete, crashed, fences, critical, events)
		for _, k := range keys {
			row += fmt.Sprintf("  %*d", len(k), ann[k])
		}
		fmt.Fprintln(w, row)
	}

	if len(phases) > 0 {
		fmt.Fprintln(w, "\nphases:")
		for _, ph := range phases {
			line := fmt.Sprintf("  %-24s [%d, %d]", ph.Name, ph.Start, ph.End)
			if len(ph.Args) > 0 {
				pk := make([]string, 0, len(ph.Args))
				for k := range ph.Args {
					pk = append(pk, k)
				}
				sort.Strings(pk)
				parts := make([]string, len(pk))
				for i, k := range pk {
					parts[i] = fmt.Sprintf("%s=%d", k, ph.Args[k])
				}
				line += "  " + strings.Join(parts, " ")
			}
			fmt.Fprintln(w, line)
		}
	}
	return nil
}
