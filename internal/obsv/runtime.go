package obsv

import (
	"runtime"
	"runtime/debug"
	"sync"
)

var (
	defaultOnce sync.Once
	defaultReg  *Registry
)

// Default returns the process-wide registry. Components that want their
// metrics scraped without explicit wiring (cmd/tsosim counters, the
// built-in job kinds) register here; padserver serves it at /v1/metrics.
func Default() *Registry {
	defaultOnce.Do(func() { defaultReg = NewRegistry() })
	return defaultReg
}

// RegisterProcessMetrics adds goroutine and heap gauges, computed at scrape
// time from the Go runtime.
func RegisterProcessMetrics(r *Registry) {
	r.GaugeFunc("pad_goroutines", "Number of live goroutines.", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	r.GaugeFunc("pad_heap_alloc_bytes", "Bytes of allocated heap objects.", func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.HeapAlloc)
	})
	r.GaugeFunc("pad_heap_objects", "Number of allocated heap objects.", func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.HeapObjects)
	})
}

// RegisterBuildInfo adds pad_build_info, a constant gauge whose labels
// carry the Go version and main-module version from the embedded build info.
func RegisterBuildInfo(r *Registry) {
	goVersion := runtime.Version()
	version := "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		version = bi.Main.Version
	}
	r.GaugeVec("pad_build_info",
		"Build information; the value is always 1.",
		"go_version", "version").With(goVersion, version).Set(1)
}
