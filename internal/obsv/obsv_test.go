package obsv

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// play feeds a small two-process execution with a fence, a crash and a
// recovery into the sink.
func play(s Sink) {
	seq := 0
	emit := func(p, passage int, k EventKind, crit bool) {
		seq++
		s.Emit(SimEvent{Seq: seq, Proc: p, Passage: passage, Kind: k, Var: -1, Critical: crit})
	}
	emit(0, 0, KEnter, false)
	emit(1, 0, KEnter, false)
	emit(0, 0, KWriteIssue, false)
	emit(0, 0, KBeginFence, true)
	emit(0, 0, KWriteCommit, false)
	emit(0, 0, KEndFence, false)
	emit(1, 0, KRead, true)
	emit(1, 0, KCrash, false)
	emit(1, 0, KRecover, false)
	emit(0, 0, KCS, false)
	emit(0, 0, KExit, false)
	emit(1, 0, KCS, false)
	emit(1, 0, KExit, false)
}

func TestTracerSpans(t *testing.T) {
	tr := NewTracer()
	play(tr)

	if got := tr.Procs(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("procs = %v", got)
	}
	p0 := tr.Spans(0)
	if len(p0) != 1 {
		t.Fatalf("proc 0 spans = %d", len(p0))
	}
	if !p0[0].Complete || p0[0].Crashed || p0[0].Fences != 1 || p0[0].Critical != 1 {
		t.Errorf("proc 0 span: %+v", p0[0])
	}
	p1 := tr.Spans(1)
	if len(p1) != 2 {
		t.Fatalf("proc 1 spans = %d (want crashed attempt + recovery)", len(p1))
	}
	if !p1[0].Crashed || p1[0].Complete {
		t.Errorf("proc 1 first attempt: %+v", p1[0])
	}
	if !p1[1].Recovery || !p1[1].Complete {
		t.Errorf("proc 1 recovery: %+v", p1[1])
	}

	tr.Annotate(0, 0, "rmr_dsm", 3)
	if p0 = tr.Spans(0); p0[0].Annotations["rmr_dsm"] != 3 {
		t.Errorf("annotation lost: %+v", p0[0].Annotations)
	}
	// Out-of-range annotations are ignored, not panics.
	tr.Annotate(0, 99, "x", 1)
	tr.Annotate(7, 0, "x", 1)
}

func TestChromeTraceValidJSON(t *testing.T) {
	tr := NewTracer()
	play(tr)
	tr.Annotate(0, 0, "rmr_dsm", 3)
	tr.Phase("verify", 1, 13, map[string]int{"states": 42})

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, buf.String())
	}
	var spans, instants, meta, phases int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			if ev["cat"] == "phase" {
				phases++
			} else if ev["cat"] == "passage" {
				spans++
			}
		case "i":
			instants++
		case "M":
			meta++
		}
	}
	if spans != 3 {
		t.Errorf("passage spans = %d, want 3", spans)
	}
	if instants != 2 { // crash + recover
		t.Errorf("instants = %d, want 2", instants)
	}
	if meta != 3 { // proc 0, proc 1, phases lane
		t.Errorf("thread metadata = %d, want 3", meta)
	}
	if phases != 1 {
		t.Errorf("phase spans = %d, want 1", phases)
	}
	// Determinism: a second render is byte-identical.
	var buf2 bytes.Buffer
	if err := tr.WriteChromeTrace(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("trace export is not deterministic")
	}
}

func TestSummary(t *testing.T) {
	tr := NewTracer()
	play(tr)
	tr.Annotate(0, 0, "rmr_dsm", 3)
	var buf bytes.Buffer
	if err := tr.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"2 proc(s)", "3 passage span(s)", "rmr_dsm"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryPrometheusRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("pad_test_total", "A counter.").Add(3)
	r.Gauge("pad_depth", "A gauge.").Set(7)
	cv := r.CounterVec("pad_faults_total", "Faults by site.", "site", "kind")
	cv.With("write_status", "torn").Inc()
	cv.With("write_status", "err").Add(2)
	h := r.HistogramVec("pad_latency_seconds", "Latency.", []float64{0.1, 1, 10}, "kind")
	h.With("experiment").Observe(0.05)
	h.With("experiment").Observe(0.5)
	h.With("experiment").Observe(50)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	pm, err := ParseText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, buf.String())
	}
	if pm.Types["pad_test_total"] != "counter" || pm.Types["pad_latency_seconds"] != "histogram" {
		t.Errorf("types: %v", pm.Types)
	}
	if v, ok := pm.Value("pad_test_total", nil); !ok || v != 3 {
		t.Errorf("pad_test_total = %v, %v", v, ok)
	}
	if v, ok := pm.Value("pad_faults_total", map[string]string{"site": "write_status", "kind": "err"}); !ok || v != 2 {
		t.Errorf("labeled counter = %v, %v", v, ok)
	}
	if err := pm.CheckHistogram("pad_latency_seconds"); err != nil {
		t.Errorf("histogram check: %v", err)
	}
	if v, ok := pm.Value("pad_latency_seconds_count", map[string]string{"kind": "experiment"}); !ok || v != 3 {
		t.Errorf("histogram count = %v, %v", v, ok)
	}
	if v, ok := pm.Value("pad_latency_seconds_bucket", map[string]string{"kind": "experiment", "le": "1"}); !ok || v != 2 {
		t.Errorf("le=1 bucket = %v, %v (cumulative expected)", v, ok)
	}
}

func TestRegistryIdempotentAndMismatch(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("pad_x_total", "x")
	c2 := r.Counter("pad_x_total", "x")
	c1.Inc()
	c2.Inc()
	if c1.Value() != 2 {
		t.Errorf("re-registration did not share state: %v", c1.Value())
	}
	defer func() {
		if recover() == nil {
			t.Error("type mismatch did not panic")
		}
	}()
	r.Gauge("pad_x_total", "now a gauge")
}

func TestGaugeFuncAndRuntimeMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterProcessMetrics(r)
	RegisterBuildInfo(r)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	pm, err := ParseText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if s := pm.ByName("pad_goroutines"); len(s) != 1 || s[0].Value < 1 {
		t.Errorf("pad_goroutines: %+v", s)
	}
	if s := pm.ByName("pad_build_info"); len(s) != 1 || s[0].Value != 1 || s[0].Labels["go_version"] == "" {
		t.Errorf("pad_build_info: %+v", s)
	}
}

func TestCountAndMultiSink(t *testing.T) {
	var a, b CountSink
	play(MultiSink{&a, &b})
	if a.Events != 13 || b.Events != 13 {
		t.Errorf("counts = %d, %d", a.Events, b.Events)
	}
}
