package obsv

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry holds metric families and renders them in Prometheus text
// exposition format (see promtext.go). Registration is idempotent: asking
// for an existing name with the same type and label names returns the
// existing instrument, so packages can share a registry without
// coordinating; a name collision with a different type or label set panics,
// since scraping such a registry would be ill-formed.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family // guarded by mu
}

// NewRegistry returns an empty Registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// family is one named metric (of one type) and its labeled children.
type family struct {
	name   string
	help   string
	typ    string
	labels []string

	mu       sync.Mutex
	children map[string]*child // guarded by mu
	order    []*child          // guarded by mu (insertion order; sorted at render time)

	gaugeFn func() float64 // GaugeFunc families only
	buckets []float64      // histogram families only
}

// child is one (label-values) series of a family.
type child struct {
	labelValues []string

	bits atomic.Uint64 // counter/gauge value as float64 bits

	hmu    sync.Mutex // histogram state
	counts []uint64   // guarded by hmu
	sum    float64    // guarded by hmu
	count  uint64     // guarded by hmu
}

func (c *child) add(v float64) {
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (c *child) set(v float64) { c.bits.Store(math.Float64bits(v)) }
func (c *child) get() float64  { return math.Float64frombits(c.bits.Load()) }

func (c *child) observe(v float64, buckets []float64) {
	c.hmu.Lock()
	for i, b := range buckets {
		if v <= b {
			c.counts[i]++
		}
	}
	c.sum += v
	c.count++
	c.hmu.Unlock()
}

// lookup returns the family for name, creating it if absent, and panics on
// a type or label-set mismatch with a previous registration.
func (r *Registry) lookup(name, help, typ string, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || !equalStrings(f.labels, labels) {
			panic(fmt.Sprintf("obsv: metric %q re-registered as %s%v, was %s%v",
				name, typ, labels, f.typ, f.labels))
		}
		return f
	}
	f := &family{
		name: name, help: help, typ: typ,
		labels:   append([]string(nil), labels...),
		children: make(map[string]*child),
	}
	r.families[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// childFor returns the series for the given label values, creating it if
// absent. len(values) must equal len(f.labels).
func (f *family) childFor(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obsv: metric %q expects %d label value(s), got %d",
			f.name, len(f.labels), len(values)))
	}
	key := labelKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c := &child{labelValues: append([]string(nil), values...)}
	if f.typ == typeHistogram {
		c.counts = make([]uint64, len(f.buckets)) // padvet:allow lockguard construction: c is not published until stored below under f.mu
	}
	f.children[key] = c
	f.order = append(f.order, c)
	return c
}

func labelKey(values []string) string {
	key := ""
	for _, v := range values {
		key += v + "\x00"
	}
	return key
}

// Counter is a monotonically increasing value.
type Counter struct{ c *child }

// Inc adds 1.
func (c *Counter) Inc() { c.c.add(1) }

// Add adds v (must be >= 0; negative deltas are ignored).
func (c *Counter) Add(v float64) {
	if v < 0 {
		return
	}
	c.c.add(v)
}

// Value returns the current value (for tests and snapshots).
func (c *Counter) Value() float64 { return c.c.get() }

// Gauge is a value that can go up and down.
type Gauge struct{ c *child }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.c.set(v) }

// Add adds v (may be negative).
func (g *Gauge) Add(v float64) { g.c.add(v) }

// Inc adds 1.
func (g *Gauge) Inc() { g.c.add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.c.add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.c.get() }

// Histogram accumulates observations into cumulative buckets.
type Histogram struct {
	c       *child
	buckets []float64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) { h.c.observe(v, h.buckets) }

// Sum and Count expose the running totals (for snapshots).
func (h *Histogram) Sum() float64 { h.c.hmu.Lock(); defer h.c.hmu.Unlock(); return h.c.sum }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { h.c.hmu.Lock(); defer h.c.hmu.Unlock(); return h.c.count }

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// With returns the series for the given label values.
func (v *CounterVec) With(values ...string) *Counter {
	return &Counter{c: v.f.childFor(values)}
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// With returns the series for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return &Gauge{c: v.f.childFor(values)}
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// With returns the series for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return &Histogram{c: v.f.childFor(values), buckets: v.f.buckets}
}

// Counter registers (or returns) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.lookup(name, help, typeCounter, nil)
	return &Counter{c: f.childFor(nil)}
}

// CounterVec registers (or returns) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.lookup(name, help, typeCounter, labels)}
}

// Gauge registers (or returns) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.lookup(name, help, typeGauge, nil)
	return &Gauge{c: f.childFor(nil)}
}

// GaugeVec registers (or returns) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.lookup(name, help, typeGauge, labels)}
}

// GaugeFunc registers a gauge whose value is computed at scrape time. A
// second registration under the same name replaces the function (so reused
// names in tests stay idempotent).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.lookup(name, help, typeGauge, nil)
	f.mu.Lock()
	f.gaugeFn = fn
	f.mu.Unlock()
}

// DefBuckets are the default histogram buckets, in seconds — the classic
// Prometheus latency ladder.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// Histogram registers (or returns) an unlabeled histogram. A nil buckets
// slice selects DefBuckets. Buckets must be sorted ascending.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.histFamily(name, help, buckets, nil)
	return &Histogram{c: f.childFor(nil), buckets: f.buckets}
}

// HistogramVec registers (or returns) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.histFamily(name, help, buckets, labels)}
}

func (r *Registry) histFamily(name, help string, buckets []float64, labels []string) *family {
	if buckets == nil {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obsv: histogram %q buckets not ascending", name))
		}
	}
	f := r.lookup(name, help, typeHistogram, labels)
	f.mu.Lock()
	if f.buckets == nil {
		f.buckets = append([]float64(nil), buckets...)
	}
	f.mu.Unlock()
	return f
}

// sortedFamilies returns the families sorted by name, for rendering.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// sortedChildren returns a family's series sorted by label values.
func (f *family) sortedChildren() []*child {
	f.mu.Lock()
	cs := append([]*child(nil), f.order...)
	f.mu.Unlock()
	sort.Slice(cs, func(i, j int) bool {
		return labelKey(cs[i].labelValues) < labelKey(cs[j].labelValues)
	})
	return cs
}
