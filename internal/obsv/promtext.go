package obsv

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in Prometheus text exposition format
// (version 0.0.4): # HELP / # TYPE headers, families sorted by name, series
// sorted by label values, histograms as cumulative _bucket series plus _sum
// and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)

		f.mu.Lock()
		fn := f.gaugeFn
		buckets := f.buckets
		f.mu.Unlock()

		if fn != nil {
			fmt.Fprintf(bw, "%s %s\n", f.name, formatValue(fn()))
			continue
		}
		for _, c := range f.sortedChildren() {
			switch f.typ {
			case typeCounter, typeGauge:
				fmt.Fprintf(bw, "%s%s %s\n", f.name,
					labelString(f.labels, c.labelValues, "", 0), formatValue(c.get()))
			case typeHistogram:
				c.hmu.Lock()
				for i, b := range buckets {
					// counts are maintained cumulatively by observe.
					fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name,
						labelString(f.labels, c.labelValues, "le", b), c.counts[i])
				}
				fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name,
					labelString(f.labels, c.labelValues, "le", inf), c.count)
				fmt.Fprintf(bw, "%s_sum%s %s\n", f.name,
					labelString(f.labels, c.labelValues, "", 0), formatValue(c.sum))
				fmt.Fprintf(bw, "%s_count%s %d\n", f.name,
					labelString(f.labels, c.labelValues, "", 0), c.count)
				c.hmu.Unlock()
			}
		}
	}
	return bw.Flush()
}

// inf marks the +Inf bucket in labelString.
var inf = func() float64 {
	v, _ := strconv.ParseFloat("+Inf", 64)
	return v
}()

// labelString renders {k="v",...}, appending le when leName is non-empty.
// Returns "" when there are no labels at all.
func labelString(names, values []string, leName string, le float64) string {
	if len(names) == 0 && leName == "" {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(n)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(values[i]))
		sb.WriteByte('"')
	}
	if leName != "" {
		if len(names) > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(leName)
		sb.WriteString(`="`)
		sb.WriteString(formatLe(le))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func formatLe(v float64) string {
	if v == inf {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// ---------------------------------------------------------------------------
// Minimal exposition-format parser, exported for tests (the ISSUE requires
// /v1/metrics to be checked with an in-test parser: names, label sets,
// histogram bucket monotonicity).

// Sample is one parsed series sample.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ParsedMetrics is the result of ParseText.
type ParsedMetrics struct {
	// Types maps family name -> declared TYPE.
	Types map[string]string
	// Samples lists every non-comment sample line in order.
	Samples []Sample
}

// ByName returns the samples whose metric name equals name.
func (p *ParsedMetrics) ByName(name string) []Sample {
	var out []Sample
	for _, s := range p.Samples {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

// Value returns the value of the unique sample matching name and labels and
// whether it exists; labels must match exactly.
func (p *ParsedMetrics) Value(name string, labels map[string]string) (float64, bool) {
	for _, s := range p.Samples {
		if s.Name != name || len(s.Labels) != len(labels) {
			continue
		}
		match := true
		for k, v := range labels {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s.Value, true
		}
	}
	return 0, false
}

// CheckHistogram verifies that name's _bucket series (grouped by their
// non-le labels) have monotonically non-decreasing cumulative counts ending
// in a +Inf bucket that equals the matching _count.
func (p *ParsedMetrics) CheckHistogram(name string) error {
	type bucket struct {
		le  float64
		inf bool
		v   float64
	}
	groups := map[string][]bucket{}
	groupLabels := map[string]map[string]string{}
	for _, s := range p.Samples {
		if s.Name != name+"_bucket" {
			continue
		}
		le, ok := s.Labels["le"]
		if !ok {
			return fmt.Errorf("%s_bucket sample without le label", name)
		}
		rest := map[string]string{}
		for k, v := range s.Labels {
			if k != "le" {
				rest[k] = v
			}
		}
		key := canonicalLabels(rest)
		b := bucket{inf: le == "+Inf"}
		if !b.inf {
			v, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return fmt.Errorf("%s_bucket: bad le %q: %v", name, le, err)
			}
			b.le = v
		}
		b.v = s.Value
		groups[key] = append(groups[key], b)
		groupLabels[key] = rest
	}
	if len(groups) == 0 {
		return fmt.Errorf("histogram %s: no _bucket samples", name)
	}
	for key, bs := range groups {
		sort.Slice(bs, func(i, j int) bool {
			if bs[i].inf != bs[j].inf {
				return !bs[i].inf
			}
			return bs[i].le < bs[j].le
		})
		if !bs[len(bs)-1].inf {
			return fmt.Errorf("histogram %s{%s}: missing +Inf bucket", name, key)
		}
		prev := -1.0
		for _, b := range bs {
			if b.v < prev {
				return fmt.Errorf("histogram %s{%s}: bucket counts not monotone (%g after %g)",
					name, key, b.v, prev)
			}
			prev = b.v
		}
		count, ok := p.Value(name+"_count", groupLabels[key])
		if !ok {
			return fmt.Errorf("histogram %s{%s}: missing _count", name, key)
		}
		if bs[len(bs)-1].v != count {
			return fmt.Errorf("histogram %s{%s}: +Inf bucket %g != count %g",
				name, key, bs[len(bs)-1].v, count)
		}
	}
	return nil
}

func canonicalLabels(m map[string]string) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + m[k]
	}
	return strings.Join(parts, ",")
}

// ParseText parses Prometheus text exposition format. It understands the
// subset WritePrometheus produces (plus arbitrary whitespace) — enough for
// test assertions, not a general scraper.
func ParseText(r io.Reader) (*ParsedMetrics, error) {
	pm := &ParsedMetrics{Types: make(map[string]string)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				pm.Types[fields[2]] = fields[3]
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		pm.Samples = append(pm.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return pm, nil
}

func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ \t"); i < 0 {
		return s, fmt.Errorf("no value: %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("unterminated label set: %q", line)
		}
		if err := parseLabels(rest[1:end], s.Labels); err != nil {
			return s, err
		}
		rest = rest[end+1:]
	}
	val := strings.TrimSpace(rest)
	// A trailing timestamp (rare) would be a second field; take the first.
	if i := strings.IndexAny(val, " \t"); i >= 0 {
		val = val[:i]
	}
	v, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", val, err)
	}
	s.Value = v
	return s, nil
}

func parseLabels(body string, out map[string]string) error {
	i := 0
	for i < len(body) {
		eq := strings.Index(body[i:], "=")
		if eq < 0 {
			return fmt.Errorf("bad label pair in %q", body)
		}
		name := strings.TrimSpace(body[i : i+eq])
		i += eq + 1
		if i >= len(body) || body[i] != '"' {
			return fmt.Errorf("label %s: expected quoted value", name)
		}
		i++
		var sb strings.Builder
		for i < len(body) {
			c := body[i]
			if c == '\\' && i+1 < len(body) {
				switch body[i+1] {
				case 'n':
					sb.WriteByte('\n')
				case '\\':
					sb.WriteByte('\\')
				case '"':
					sb.WriteByte('"')
				default:
					sb.WriteByte(body[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			sb.WriteByte(c)
			i++
		}
		out[name] = sb.String()
		if i < len(body) && body[i] == ',' {
			i++
		}
	}
	return nil
}
