package adversary

import (
	"testing"

	"priceadaptive/internal/mutex"
	"priceadaptive/internal/tso"
)

func runCrashes(t *testing.T, seed int64) (*tso.Execution, CrashRunResult) {
	t.Helper()
	sim, err := tso.NewSimulator(tso.Config{N: 3}, mutex.Build(mutex.NewRTAS))
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Kill()
	res, err := RunWithCrashes(sim, CrashConfig{
		Seed: seed, CrashProb: 0.08, MaxCrashesPerProc: 2, TotalCrashes: 4, CommitProb: 0.3,
	}, 200000)
	if err != nil {
		t.Fatalf("RunWithCrashes(seed=%d): %v", seed, err)
	}
	if !res.Completed {
		t.Fatalf("run did not complete (seed=%d)", seed)
	}
	// Copy out: the simulator dies with the test helper.
	ex := &tso.Execution{
		Events:   append([]tso.Event(nil), sim.Execution().Events...),
		Schedule: append([]tso.Decision(nil), sim.Execution().Schedule...),
	}
	return ex, res
}

// TestRunWithCrashesDeterministic pins the tentpole's determinism claim:
// the same seed reproduces the exact schedule, crash points included.
func TestRunWithCrashesDeterministic(t *testing.T) {
	a, ra := runCrashes(t, 42)
	b, rb := runCrashes(t, 42)
	if ra.Crashes != rb.Crashes || ra.Recoveries != rb.Recoveries || ra.Steps != rb.Steps {
		t.Fatalf("accounting diverged: %+v vs %+v", ra, rb)
	}
	if len(a.Schedule) != len(b.Schedule) {
		t.Fatalf("schedule lengths diverged: %d vs %d", len(a.Schedule), len(b.Schedule))
	}
	for i := range a.Schedule {
		if a.Schedule[i] != b.Schedule[i] {
			t.Fatalf("decision %d diverged: %+v vs %+v", i, a.Schedule[i], b.Schedule[i])
		}
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event counts diverged: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		ea, eb := a.Events[i], b.Events[i]
		if ea.Kind != eb.Kind || ea.P != eb.P || ea.Val != eb.Val {
			t.Fatalf("event %d diverged: %s vs %s", i, ea, eb)
		}
	}
}

// TestRunWithCrashesActuallyCrashes makes sure the adversary exercises the
// crash machinery (a vacuous determinism test would be useless) and that
// every crash was matched by a recovery in a completed run.
func TestRunWithCrashesActuallyCrashes(t *testing.T) {
	crashed := false
	for seed := int64(1); seed <= 10; seed++ {
		_, res := runCrashes(t, seed)
		if res.Crashes > 0 {
			crashed = true
			if res.Recoveries != res.Crashes {
				t.Fatalf("seed %d: %d crashes but %d recoveries in a completed run", seed, res.Crashes, res.Recoveries)
			}
		}
	}
	if !crashed {
		t.Fatal("no seed produced a crash; CrashProb plumbing broken")
	}
}

// TestRunWithCrashesDifferentSeedsDiverge is a sanity check that the seed
// actually steers the schedule.
func TestRunWithCrashesDifferentSeedsDiverge(t *testing.T) {
	a, _ := runCrashes(t, 1)
	b, _ := runCrashes(t, 2)
	if len(a.Schedule) == len(b.Schedule) {
		same := true
		for i := range a.Schedule {
			if a.Schedule[i] != b.Schedule[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("seeds 1 and 2 produced identical schedules")
		}
	}
}
