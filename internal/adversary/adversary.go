// Package adversary implements the paper's lower-bound construction
// (Sections 3 and 4) as an executable scheduling strategy against a concrete
// read/write mutual-exclusion algorithm running on the TSO simulator.
//
// Starting from H_0, in which every process executes only its Enter event,
// the construction inductively builds executions H_1, H_2, ... In H_i
// exactly i processes have completed a passage and every remaining active
// process has completed exactly i fences and executed exactly l_i critical
// events while still inside a single passage. Each induction step runs three
// phases:
//
//   - the read phase (Lemma 6): active processes advance to their next
//     special event; processes about to perform conflicting critical reads
//     are thinned with a Turán independent set so no information flows
//     between active processes;
//   - the write phase (Lemma 7): buffered writes are committed; in the
//     high-contention case all surviving processes write the same variable
//     in increasing ID order, so the largest ID ends up visible on it;
//   - the regularization phase (Lemma 8): the largest-ID active process
//     p_max runs to completion, with the single invisible process it would
//     observe erased before each of its critical events.
//
// Erasure is realized by deterministic replay (tso.Simulator.Replay): the
// invisible-set properties guarantee the retained processes observe
// identical values, and the construction verifies this.
//
// Against an f-adaptive algorithm the construction forces one additional
// fence per induction step (Theorem 1). Against a non-adaptive algorithm it
// instead terminates with a NonAdaptiveCertificate: a concrete execution of
// total contention i+1 in which some process exceeds the claimed f(i+1)
// critical-event budget. Either outcome is a faithful reproduction of the
// paper's dichotomy.
package adversary

import (
	"context"
	"errors"
	"fmt"

	"priceadaptive/internal/bounds"
	"priceadaptive/internal/obsv"
	"priceadaptive/internal/tso"
)

// CheckLevel selects how much invariant verification runs between phases.
type CheckLevel int

const (
	// CheckNone runs no invariant verification (fastest).
	CheckNone CheckLevel = iota
	// CheckInvariants verifies IN1/IN2/IN4/IN5, semi-regularity and
	// orderedness after every phase.
	CheckInvariants
	// CheckFull additionally verifies IN3 by replaying erasures (slow;
	// intended for tests at small N).
	CheckFull
)

// Config parameterizes a construction run.
type Config struct {
	// N is the number of processes.
	N int
	// Model selects DSM or CC. Defaults to CC.
	Model tso.Model
	// Algorithm builds the victim algorithm. It must use only reads,
	// writes and fences (no CAS) and be weak obstruction-free.
	Algorithm tso.Build
	// F is the adaptivity function the victim claims; the construction
	// uses it both to bound phase lengths and to issue non-adaptivity
	// certificates.
	F bounds.AdaptivityFunc
	// MaxInduction caps the number of induction steps (fences forced).
	// Defaults to N (the construction stops on its own well before).
	MaxInduction int
	// SoloBudget bounds the number of events granted to a single process
	// while it runs between special events; exceeding it is reported as a
	// weak obstruction-freedom failure. Defaults to 10000 + 200*N.
	SoloBudget int
	// Check selects invariant verification.
	Check CheckLevel
	// Trace, when non-nil, receives the final execution and one phase span
	// per construction phase after the run completes. The construction
	// cannot sink events live: erasure replaces the simulator wholesale, so
	// a live sink would double-count every replayed prefix.
	Trace *obsv.Tracer
}

// StopReason explains why the construction stopped.
type StopReason int

const (
	// StopActiveExhausted means no active processes remain.
	StopActiveExhausted StopReason = iota + 1
	// StopMaxInduction means the configured induction cap was reached.
	StopMaxInduction
	// StopNonAdaptive means the victim exceeded its claimed adaptivity
	// budget; Result.Certificate holds the evidence.
	StopNonAdaptive
	// StopViolation means the victim violated mutual exclusion.
	StopViolation
	// StopNotObstructionFree means a process exceeded the solo step budget
	// without reaching a special event.
	StopNotObstructionFree
)

// String returns a short description of the stop reason.
func (r StopReason) String() string {
	switch r {
	case StopActiveExhausted:
		return "active set exhausted"
	case StopMaxInduction:
		return "induction cap reached"
	case StopNonAdaptive:
		return "non-adaptivity certificate"
	case StopViolation:
		return "exclusion violation"
	case StopNotObstructionFree:
		return "solo budget exceeded (not weak obstruction-free?)"
	default:
		return fmt.Sprintf("StopReason(%d)", int(r))
	}
}

// NonAdaptiveCertificate is evidence that the victim is not f-adaptive: in
// an execution whose total contention is Contention, process Process
// executed CriticalEvents critical events during a single passage, exceeding
// Allowed = f(Contention).
type NonAdaptiveCertificate struct {
	Phase          string
	Contention     int
	Process        tso.ProcID
	CriticalEvents int
	Allowed        float64
}

// String renders the certificate.
func (c *NonAdaptiveCertificate) String() string {
	return fmt.Sprintf("%s phase: p%d executed %d critical events in a passage at total contention %d > f(%d)=%g",
		c.Phase, c.Process, c.CriticalEvents, c.Contention, c.Contention, c.Allowed)
}

// PhaseRecord summarizes one phase of one induction step.
type PhaseRecord struct {
	// Induction is the step index i (building H_{i+1} from H_i).
	Induction int
	// Phase is "read", "write", or "regularize".
	Phase string
	// Iterations is the number of inner iterations (the paper's s, t, m).
	Iterations int
	// ActiveBefore and ActiveAfter are |Act| at phase boundaries.
	ActiveBefore, ActiveAfter int
	// Erased counts processes erased during the phase.
	Erased int
	// EventsBefore and EventsAfter are the execution length at the phase
	// boundaries. Erasure can shrink the execution, so EventsAfter may be
	// smaller than EventsBefore.
	EventsBefore, EventsAfter int
}

// Result reports the outcome of a construction run.
type Result struct {
	// InductionSteps is the number of completed induction steps i: every
	// process still active after the run has completed i fences inside a
	// single passage, and i processes finished.
	InductionSteps int
	// FencesForced is the number of fences each surviving active process
	// was forced to execute (equals InductionSteps).
	FencesForced int
	// TotalContention is the contention of the witness execution (i+1).
	TotalContention int
	// Witness is an active process that completed FencesForced fences
	// mid-passage, or -1 if none survived.
	Witness tso.ProcID
	// WitnessCritical is the witness's critical-event count.
	WitnessCritical int
	// WitnessVerified reports that the Theorem 1 witness execution was
	// extracted by erasing every other active process and re-checked: the
	// witness completed FencesForced fences and exactly FencesForced+1
	// processes participate (total contention i+1).
	WitnessVerified bool
	// WitnessParticipants is the number of processes issuing events in the
	// extracted witness execution.
	WitnessParticipants int
	// ActiveRemaining is |Act| when the construction stopped.
	ActiveRemaining int
	// CriticalPerActive is l_i: critical events per active process.
	CriticalPerActive int
	// Stopped tells why the run ended.
	Stopped StopReason
	// Certificate is set when Stopped == StopNonAdaptive.
	Certificate *NonAdaptiveCertificate
	// Violation is set when Stopped == StopViolation.
	Violation *tso.Violation
	// Phases records every phase of every induction step.
	Phases []PhaseRecord
	// Events is the total number of events in the final execution.
	Events int
}

// Errors returned by Run.
var (
	// ErrUsesCAS is returned when the victim algorithm performs a CAS; the
	// operational construction supports read/write algorithms only (the
	// paper extends the result to comparison primitives by a separate
	// argument following [6,15]).
	ErrUsesCAS = errors.New("adversary: victim algorithm uses CAS; construction supports read/write algorithms only")
)

// Run executes the construction and returns its Result. The returned error
// is non-nil only for configuration or internal failures, or the context's
// error when ctx is cancelled between induction steps; algorithmic outcomes
// (certificates, violations) are reported in the Result.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("adversary: need at least 2 processes, got %d", cfg.N)
	}
	if cfg.Algorithm == nil {
		return nil, errors.New("adversary: missing Algorithm")
	}
	if cfg.F == nil {
		cfg.F = bounds.Linear{C: 1}
	}
	if cfg.MaxInduction <= 0 {
		cfg.MaxInduction = cfg.N
	}
	if cfg.SoloBudget <= 0 {
		cfg.SoloBudget = 10000 + 200*cfg.N
	}
	if cfg.Model == 0 {
		cfg.Model = tso.CC
	}

	st, err := newState(cfg)
	if err != nil {
		return nil, err
	}
	st.ctx = ctx
	defer st.sim.Kill()
	res, err := st.run()
	if err == nil && cfg.Trace != nil {
		feedTrace(cfg.Trace, st, res)
	}
	return res, err
}

// feedTrace replays the final execution into the tracer and records one
// phase span per construction phase.
func feedTrace(tr *obsv.Tracer, st *state, res *Result) {
	tso.EmitExecution(st.sim.Execution(), tr)
	for _, ph := range res.Phases {
		tr.Phase(fmt.Sprintf("i%d %s", ph.Induction, ph.Phase),
			ph.EventsBefore, ph.EventsAfter, map[string]int{
				"iterations":    ph.Iterations,
				"active_before": ph.ActiveBefore,
				"active_after":  ph.ActiveAfter,
				"erased":        ph.Erased,
			})
	}
}
