package adversary

import (
	"context"
	"fmt"
	"sort"

	"priceadaptive/internal/awareness"
	"priceadaptive/internal/graphs"
	"priceadaptive/internal/tso"
)

// stopError unwinds the construction with an algorithmic outcome.
type stopError struct {
	reason    StopReason
	cert      *NonAdaptiveCertificate
	violation *tso.Violation
}

// Error implements the error interface.
func (e *stopError) Error() string { return "adversary: stopped: " + e.reason.String() }

// state carries the construction through its phases.
type state struct {
	ctx context.Context // padvet:allow ctx-field single construction run, threaded through every phase
	cfg Config
	sim *tso.Simulator
	// act is the current active (and invisible) set, sorted ascending.
	act []tso.ProcID
	// fin is i, the number of finished processes.
	fin int
	// crit is l_i, the number of critical events per active process.
	crit int
	res  *Result
	// bestFences/bestWitness/bestCrit snapshot the strongest Theorem 1
	// witness seen so far: after building H_i with a non-empty active set,
	// any active process has completed i fences mid-passage. bestSchedLen
	// and bestBanned pin the schedule prefix and erasure set needed to
	// extract the witness execution (the final erasure in the proof of
	// Theorem 1).
	bestFences   int
	bestWitness  tso.ProcID
	bestCrit     int
	bestSchedLen int
	bestBanned   map[tso.ProcID]bool
}

// newState builds the simulator and the initial execution H_0, in which
// every process executes its Enter event only.
func newState(cfg Config) (*state, error) {
	sim, err := tso.NewSimulator(tso.Config{
		N:        cfg.N,
		Model:    cfg.Model,
		Passages: 1,
		Name:     "adversary",
	}, cfg.Algorithm)
	if err != nil {
		return nil, fmt.Errorf("adversary: build victim: %w", err)
	}
	st := &state{cfg: cfg, sim: sim, res: &Result{Witness: -1}, bestWitness: -1}
	st.act = make([]tso.ProcID, cfg.N)
	for i := 0; i < cfg.N; i++ {
		st.act[i] = tso.ProcID(i)
		if _, err := sim.Step(tso.ProcID(i)); err != nil {
			return nil, fmt.Errorf("adversary: H_0 Enter p%d: %w", i, err)
		}
	}
	return st, nil
}

// run drives induction steps until a stop condition fires.
func (st *state) run() (*Result, error) {
	err := func() error {
		for i := 0; ; i++ {
			if err := st.ctx.Err(); err != nil {
				return err
			}
			if len(st.act) == 0 {
				return &stopError{reason: StopActiveExhausted}
			}
			if i >= st.cfg.MaxInduction {
				return &stopError{reason: StopMaxInduction}
			}
			if err := st.inductionStep(i); err != nil {
				return err
			}
			if len(st.act) > 0 {
				st.bestFences = st.fin
				st.bestWitness = st.act[0]
				st.bestCrit = st.sim.CurrentStats(st.act[0]).Critical
				st.bestSchedLen = len(st.sim.Execution().Schedule)
				st.bestBanned = make(map[tso.ProcID]bool, len(st.act)-1)
				for _, p := range st.act[1:] {
					st.bestBanned[p] = true
				}
			}
		}
	}()
	var se *stopError
	if !asStop(err, &se) {
		return nil, err
	}
	st.res.Stopped = se.reason
	st.res.Certificate = se.cert
	st.res.Violation = se.violation
	st.finalize()
	return st.res, nil
}

// asStop unwraps a *stopError.
func asStop(err error, out **stopError) bool {
	se, ok := err.(*stopError)
	if ok {
		*out = se
	}
	return ok
}

// finalize fills the summary fields of the result.
func (st *state) finalize() {
	st.res.InductionSteps = st.fin
	st.res.FencesForced = st.bestFences
	st.res.TotalContention = st.bestFences + 1
	st.res.ActiveRemaining = len(st.act)
	st.res.CriticalPerActive = st.crit
	st.res.Events = len(st.sim.Execution().Events)
	st.res.Witness = st.bestWitness
	st.res.WitnessCritical = st.bestCrit
	st.extractWitness()
}

// extractWitness performs the final step of the proof of Theorem 1: erase
// every active process except the witness from H_i, leaving an execution H
// whose total contention is i+1 in which the witness executed i fences
// inside a single passage. The result is verified (the erasure must be
// faithful and the fence count must match) and summarized in the Result.
func (st *state) extractWitness() {
	if st.bestWitness < 0 {
		return
	}
	replayed, err := st.sim.ReplayPrefix(st.bestBanned, st.bestSchedLen)
	if err != nil {
		return
	}
	defer replayed.Kill()
	participants := make(map[tso.ProcID]bool)
	for _, e := range replayed.Execution().Events {
		participants[e.P] = true
	}
	st.res.WitnessParticipants = len(participants)
	st.res.WitnessVerified = replayed.FencesCompleted(st.bestWitness) == st.bestFences &&
		len(participants) == st.bestFences+1
}

// inductionStep builds H_{i+1} from H_i via the three phases.
func (st *state) inductionStep(i int) error {
	if err := st.readPhase(i); err != nil {
		return err
	}
	if err := st.writePhase(i); err != nil {
		return err
	}
	if err := st.regularizePhase(i); err != nil {
		return err
	}
	return st.checkInductionInvariants()
}

// allowed returns f(i+1), the adaptivity budget for the current step.
func (st *state) allowed() float64 { return st.cfg.F.Eval(st.fin + 1) }

// certificate stops the run with a non-adaptivity certificate for process p.
func (st *state) certificate(phase string, p tso.ProcID, critical int) error {
	return &stopError{
		reason: StopNonAdaptive,
		cert: &NonAdaptiveCertificate{
			Phase:          phase,
			Contention:     st.fin + 1,
			Process:        p,
			CriticalEvents: critical,
			Allowed:        st.allowed(),
		},
	}
}

// runAllToSpecial advances every active process (in increasing ID order)
// until its pending operation is a special event.
func (st *state) runAllToSpecial() error {
	for _, p := range st.act {
		budget := st.cfg.SoloBudget
		for !st.sim.PendingSpecial(p) {
			if _, err := st.sim.Step(p); err != nil {
				return fmt.Errorf("adversary: advancing p%d: %w", p, err)
			}
			if budget--; budget < 0 {
				return &stopError{reason: StopNotObstructionFree}
			}
		}
		if msg, ok := st.sim.ProgramPanic(p); ok {
			return fmt.Errorf("adversary: p%d panicked: %s", p, msg)
		}
	}
	if v := st.sim.ExclusionViolation(); v != nil {
		return &stopError{reason: StopViolation, violation: v}
	}
	return nil
}

// erase removes all active processes outside keep from the execution by
// deterministic replay, verifies the erasure, and swaps the simulator.
func (st *state) erase(keep []tso.ProcID, rec *PhaseRecord) error {
	keepSet := make(map[tso.ProcID]bool, len(keep))
	for _, p := range keep {
		keepSet[p] = true
	}
	banned := make(map[tso.ProcID]bool)
	for _, p := range st.act {
		if !keepSet[p] {
			banned[p] = true
		}
	}
	if len(banned) == 0 {
		return nil
	}
	// Remember pending operations for the congruence assertion (Lemma 4,
	// part 5). Variables are compared by index because replay reallocates
	// them.
	type pend struct {
		kind tso.OpKind
		vi   int
	}
	before := make(map[tso.ProcID]pend, len(keep))
	for _, p := range keep {
		op := st.sim.PendingOp(p)
		vi := -1
		if op.Var != nil {
			vi = op.Var.Index()
		}
		before[p] = pend{kind: op.Kind, vi: vi}
	}

	replayed, err := st.sim.Replay(banned)
	if err != nil {
		return fmt.Errorf("adversary: erase %d processes: %w", len(banned), err)
	}
	if err := tso.VerifyErasure(st.sim.Execution(), replayed.Execution(), banned); err != nil {
		replayed.Kill()
		return fmt.Errorf("adversary: erasure not invisible: %w", err)
	}
	st.sim.Kill()
	st.sim = replayed

	newAct := make([]tso.ProcID, 0, len(keep))
	for _, p := range st.act {
		if keepSet[p] {
			newAct = append(newAct, p)
		}
	}
	st.act = newAct
	rec.Erased += len(banned)

	for _, p := range st.act {
		op := st.sim.PendingOp(p)
		vi := -1
		if op.Var != nil {
			vi = op.Var.Index()
		}
		if b := before[p]; b.kind != op.Kind || b.vi != vi {
			return fmt.Errorf("adversary: p%d pending op not congruent after erasure: had %v/%d, now %v/%d",
				p, b.kind, b.vi, op.Kind, vi)
		}
	}
	return nil
}

// readPhase implements Lemma 6: it extends the execution with critical reads
// until the surviving active processes are all about to begin a fence.
func (st *state) readPhase(i int) error {
	rec := PhaseRecord{
		Induction: i, Phase: "read", ActiveBefore: len(st.act),
		EventsBefore: len(st.sim.Execution().Events),
	}
	defer func() {
		rec.ActiveAfter = len(st.act)
		rec.EventsAfter = len(st.sim.Execution().Events)
		st.res.Phases = append(st.res.Phases, rec)
	}()
	for {
		if err := st.runAllToSpecial(); err != nil {
			return err
		}
		var z1, z2 []tso.ProcID
		for _, p := range st.act {
			op := st.sim.PendingOp(p)
			switch op.Kind {
			case tso.OpCS:
				// At most one process may be about to enter the CS
				// (Lemma 5); it is dropped from Y and erased below.
			case tso.OpBeginFence:
				z1 = append(z1, p)
			case tso.OpRead:
				z2 = append(z2, p)
			case tso.OpCAS:
				return ErrUsesCAS
			default:
				return fmt.Errorf("adversary: read phase: p%d pending unexpected %v", p, op)
			}
		}
		if len(z1) == 0 && len(z2) == 0 {
			// Only CS-pending processes remain; no further fence can be
			// forced.
			return &stopError{reason: StopActiveExhausted}
		}
		if len(z1) > len(z2) {
			// Case I: a majority is about to fence. Keep them, erase the
			// rest, and execute the BeginFence events.
			if err := st.erase(z1, &rec); err != nil {
				return err
			}
			for _, p := range st.act {
				if _, err := st.sim.Step(p); err != nil {
					return fmt.Errorf("adversary: BeginFence p%d: %w", p, err)
				}
			}
			return nil
		}
		// Case II: thin the readers with an independent set of the
		// conflict graph (edges to the owner and the last writer of the
		// variable about to be read), then execute the reads.
		g := graphs.New(z2)
		for _, p := range z2 {
			v := st.sim.PendingOp(p).Var
			if owner := v.Owner(); owner != tso.NoOwner {
				g.AddEdge(p, owner)
			}
			if w, ok := st.sim.LastWriter(v); ok {
				g.AddEdge(p, w)
			}
		}
		keep := g.IndependentSet()
		if err := st.erase(keep, &rec); err != nil {
			return err
		}
		for _, p := range st.act {
			if _, err := st.sim.Step(p); err != nil {
				return fmt.Errorf("adversary: critical read p%d: %w", p, err)
			}
		}
		rec.Iterations++
		st.crit++
		if float64(st.crit) > st.allowed() {
			return st.certificate("read", st.act[0], st.crit)
		}
		if err := st.checkRegular(); err != nil {
			return err
		}
	}
}

// writePhase implements Lemma 7: buffered writes are committed; conflicting
// writers are thinned (low contention) or serialized in increasing ID order
// on a single hot variable (high contention) so that the largest active ID
// ends up visible on every hot variable.
func (st *state) writePhase(i int) error {
	rec := PhaseRecord{
		Induction: i, Phase: "write", ActiveBefore: len(st.act),
		EventsBefore: len(st.sim.Execution().Events),
	}
	defer func() {
		rec.ActiveAfter = len(st.act)
		rec.EventsAfter = len(st.sim.Execution().Events)
		st.res.Phases = append(st.res.Phases, rec)
	}()
	for {
		if err := st.runAllToSpecial(); err != nil {
			return err
		}
		var z1, z2 []tso.ProcID
		for _, p := range st.act {
			op := st.sim.PendingOp(p)
			switch op.Kind {
			case tso.OpEndFence:
				z1 = append(z1, p)
			case tso.OpCommit:
				z2 = append(z2, p)
			case tso.OpCAS:
				return ErrUsesCAS
			default:
				return fmt.Errorf("adversary: write phase: p%d pending unexpected %v", p, op)
			}
		}
		if 2*len(z1) >= len(st.act) {
			// Case I: a majority completed their commits. Keep them,
			// execute the EndFence events: every survivor has now
			// completed fence i+1.
			if err := st.erase(z1, &rec); err != nil {
				return err
			}
			for _, p := range st.act {
				if _, err := st.sim.Step(p); err != nil {
					return fmt.Errorf("adversary: EndFence p%d: %w", p, err)
				}
			}
			return nil
		}
		// Group pending critical commits by target variable.
		byVar := make(map[int][]tso.ProcID)
		var varOrder []int
		for _, p := range z2 {
			vi := st.sim.PendingOp(p).Var.Index()
			if len(byVar[vi]) == 0 {
				varOrder = append(varOrder, vi)
			}
			byVar[vi] = append(byVar[vi], p)
		}
		sort.Ints(varOrder)
		var keep []tso.ProcID
		if len(varOrder)*len(varOrder) >= len(z2) {
			// Case II (low contention): one representative per variable,
			// thinned by an independent set of the access-conflict graph.
			reps := make([]tso.ProcID, 0, len(varOrder))
			for _, vi := range varOrder {
				ps := byVar[vi]
				sort.Slice(ps, func(a, b int) bool { return ps[a] < ps[b] })
				reps = append(reps, ps[0])
			}
			g := graphs.New(reps)
			for _, p := range reps {
				v := st.sim.PendingOp(p).Var
				if owner := v.Owner(); owner != tso.NoOwner {
					g.AddEdge(p, owner)
				}
				for _, q := range st.sim.AccessedBy(v) {
					if q != p {
						g.AddEdge(p, q)
					}
				}
			}
			keep = g.IndependentSet()
		} else {
			// Case III (high contention): keep everyone writing the most
			// popular variable and serialize their commits by ID.
			bestVar, bestLen := -1, -1
			for _, vi := range varOrder {
				if l := len(byVar[vi]); l > bestLen {
					bestVar, bestLen = vi, l
				}
			}
			keep = byVar[bestVar]
		}
		sort.Slice(keep, func(a, b int) bool { return keep[a] < keep[b] })
		if err := st.erase(keep, &rec); err != nil {
			return err
		}
		// Execute the commits in increasing ID order (st.act is sorted),
		// so the largest ID is the last writer of every hot variable.
		for _, p := range st.act {
			if _, err := st.sim.Step(p); err != nil {
				return fmt.Errorf("adversary: critical commit p%d: %w", p, err)
			}
		}
		rec.Iterations++
		st.crit++
		if float64(st.crit) > st.allowed() {
			return st.certificate("write", st.act[0], st.crit)
		}
		if err := st.checkSemiRegularOrdered(); err != nil {
			return err
		}
	}
}

// regularizePhase implements Lemma 8: the largest-ID active process runs to
// completion; before each of its critical events the at most one invisible
// process it could observe is erased.
func (st *state) regularizePhase(i int) error {
	rec := PhaseRecord{
		Induction: i, Phase: "regularize", ActiveBefore: len(st.act),
		EventsBefore: len(st.sim.Execution().Events),
	}
	defer func() {
		rec.ActiveAfter = len(st.act)
		rec.EventsAfter = len(st.sim.Execution().Events)
		st.res.Phases = append(st.res.Phases, rec)
	}()
	if len(st.act) == 0 {
		return &stopError{reason: StopActiveExhausted}
	}
	pmax := st.act[len(st.act)-1]
	for {
		// Run pmax until it terminates or is about to execute a critical
		// event.
		budget := st.cfg.SoloBudget
		for !st.sim.Done(pmax) && !st.sim.PendingCritical(pmax) {
			if st.sim.PendingOp(pmax).Kind == tso.OpCAS {
				return ErrUsesCAS
			}
			if _, err := st.sim.Step(pmax); err != nil {
				return fmt.Errorf("adversary: regularize p%d: %w", pmax, err)
			}
			if budget--; budget < 0 {
				return &stopError{reason: StopNotObstructionFree}
			}
		}
		if msg, ok := st.sim.ProgramPanic(pmax); ok {
			return fmt.Errorf("adversary: p%d panicked: %s", pmax, msg)
		}
		if st.sim.Done(pmax) {
			// Case I: pmax finished its passage; H_{i+1} is regular.
			st.act = st.act[:len(st.act)-1]
			st.fin++
			return nil
		}
		if v := st.sim.ExclusionViolation(); v != nil {
			return &stopError{reason: StopViolation, violation: v}
		}
		// Case II: pmax is about to execute a critical event on u. Erase
		// the (at most one, Claim 4.3.2) invisible process visible on u.
		op := st.sim.PendingOp(pmax)
		u := op.Var
		if u == nil {
			return fmt.Errorf("adversary: regularize: critical pending op %v has no variable", op)
		}
		banned := make(map[tso.ProcID]bool)
		if w, ok := st.sim.LastWriter(u); ok && w != pmax && st.isActive(w) {
			banned[w] = true
		}
		if ow := u.Owner(); ow != tso.NoOwner && ow != pmax && st.isActive(ow) {
			banned[ow] = true
		}
		if len(banned) > 1 {
			return fmt.Errorf("adversary: Claim 4.3.2 violated: |Q|=%d for %s", len(banned), u)
		}
		if len(banned) == 1 {
			keep := make([]tso.ProcID, 0, len(st.act)-1)
			for _, p := range st.act {
				if !banned[p] {
					keep = append(keep, p)
				}
			}
			if err := st.erase(keep, &rec); err != nil {
				return err
			}
		}
		if _, err := st.sim.Step(pmax); err != nil {
			return fmt.Errorf("adversary: regularize critical event p%d: %w", pmax, err)
		}
		rec.Iterations++
		if c := st.sim.CurrentStats(pmax).Critical; float64(c) > st.allowed() {
			return st.certificate("regularize", pmax, c)
		}
		if err := st.checkWSet(pmax); err != nil {
			return err
		}
	}
}

// isActive reports whether p is in the current active set.
func (st *state) isActive(p tso.ProcID) bool {
	for _, q := range st.act {
		if q == p {
			return true
		}
	}
	return false
}

// checkRegular verifies Lemma 6's regularity invariant (G_k is regular).
func (st *state) checkRegular() error {
	if st.cfg.Check == CheckNone {
		return nil
	}
	opts := awareness.Options{CheckIN3: st.cfg.Check == CheckFull}
	if err := awareness.CheckRegular(st.sim, opts); err != nil {
		return fmt.Errorf("adversary: G_k not regular: %w", err)
	}
	return nil
}

// checkSemiRegularOrdered verifies Lemma 7's invariant (J_k is a
// semi-regular ordered execution).
func (st *state) checkSemiRegularOrdered() error {
	if st.cfg.Check == CheckNone {
		return nil
	}
	opts := awareness.Options{CheckIN3: st.cfg.Check == CheckFull}
	if err := awareness.CheckSemiRegular(st.sim, opts); err != nil {
		return fmt.Errorf("adversary: J_k not semi-regular: %w", err)
	}
	if err := awareness.CheckOrdered(st.sim); err != nil {
		return fmt.Errorf("adversary: J_k not ordered: %w", err)
	}
	return nil
}

// checkWSet verifies Lemma 8's invariant: W_k = Act \ {pmax} is an IN-set.
func (st *state) checkWSet(pmax tso.ProcID) error {
	if st.cfg.Check == CheckNone {
		return nil
	}
	w := make([]tso.ProcID, 0, len(st.act)-1)
	for _, p := range st.act {
		if p != pmax {
			w = append(w, p)
		}
	}
	opts := awareness.Options{CheckIN3: st.cfg.Check == CheckFull}
	if err := awareness.CheckINSet(st.sim, w, opts); err != nil {
		return fmt.Errorf("adversary: W_k not an IN-set: %w", err)
	}
	return nil
}

// checkInductionInvariants verifies the H_{i+1} conditions (a)-(d) of
// Section 4: regularity, equal critical counts, i finished processes, and i
// completed fences per active process.
func (st *state) checkInductionInvariants() error {
	if st.cfg.Check == CheckNone {
		return nil
	}
	if got := st.sim.NumFinished(); got != st.fin {
		return fmt.Errorf("adversary: |Fin| = %d, want %d", got, st.fin)
	}
	for _, p := range st.act {
		if got := st.sim.FencesCompleted(p); got != st.fin {
			return fmt.Errorf("adversary: p%d completed %d fences, want %d", p, got, st.fin)
		}
		if got := st.sim.CurrentStats(p).Critical; got != st.crit {
			return fmt.Errorf("adversary: p%d executed %d critical events, want l=%d", p, got, st.crit)
		}
		if st.sim.ModeOf(p) != tso.ModeRead {
			return fmt.Errorf("adversary: p%d not in read mode after H_%d", p, st.fin)
		}
	}
	opts := awareness.Options{CheckIN3: st.cfg.Check == CheckFull}
	if err := awareness.CheckRegular(st.sim, opts); err != nil {
		return fmt.Errorf("adversary: H_%d not regular: %w", st.fin, err)
	}
	return nil
}
