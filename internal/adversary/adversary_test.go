package adversary

import (
	"context"
	"testing"

	"priceadaptive/internal/bounds"
	"priceadaptive/internal/mutex"
	"priceadaptive/internal/tso"
	"priceadaptive/internal/vmprog"
)

func TestConfigValidation(t *testing.T) {
	if _, err := Run(context.Background(), Config{N: 1}); err == nil {
		t.Error("N=1 must be rejected")
	}
	if _, err := Run(context.Background(), Config{N: 4}); err == nil {
		t.Error("missing Algorithm must be rejected")
	}
}

func TestConstructionForcesFencesOnSyntheticLock(t *testing.T) {
	// The synthetic lock is adaptive and read/write-only: the construction
	// must force fences, one per induction step (Theorem 1's conclusion).
	res, err := Run(context.Background(), Config{
		N:         12,
		Algorithm: mutex.Build(mutex.NewSynthetic),
		F:         bounds.Affine{A: 16, C: 10},
		Check:     CheckFull,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Certificate != nil {
		t.Fatalf("unexpected certificate: %v", res.Certificate)
	}
	if res.Violation != nil {
		t.Fatalf("unexpected violation: %v", res.Violation)
	}
	if res.FencesForced < 3 {
		t.Errorf("fences forced = %d, want >= 3 (phases: %+v)", res.FencesForced, res.Phases)
	}
	if res.TotalContention != res.FencesForced+1 {
		t.Errorf("contention = %d, want %d", res.TotalContention, res.FencesForced+1)
	}
	if res.Witness < 0 {
		t.Error("missing witness process")
	}
	t.Logf("result: forced=%d contention=%d l=%d remaining=%d stop=%v events=%d",
		res.FencesForced, res.TotalContention, res.CriticalPerActive,
		res.ActiveRemaining, res.Stopped, res.Events)
}

func TestConstructionFencesGrowWithN(t *testing.T) {
	forced := func(n int) int {
		res, err := Run(context.Background(), Config{
			N:         n,
			Algorithm: mutex.Build(mutex.NewSynthetic),
			F:         bounds.Affine{A: 16, C: 10},
			Check:     CheckNone,
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if res.Certificate != nil {
			t.Fatalf("n=%d: unexpected certificate: %v", n, res.Certificate)
		}
		return res.FencesForced
	}
	f4, f16 := forced(4), forced(16)
	if f16 <= f4 {
		t.Errorf("forced fences: n=4 -> %d, n=16 -> %d; want growth with N", f4, f16)
	}
}

func TestConstructionCertifiesBakeryNonAdaptive(t *testing.T) {
	// Bakery scans all N processes per passage: against a linear
	// adaptivity claim with small N-independent budget, the construction
	// must produce a non-adaptivity certificate.
	res, err := Run(context.Background(), Config{
		N:         16,
		Algorithm: mutex.Build(mutex.NewBakery),
		F:         bounds.Linear{C: 1},
		Check:     CheckInvariants,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Stopped != StopNonAdaptive {
		t.Fatalf("stopped = %v, want certificate (result %+v)", res.Stopped, res)
	}
	c := res.Certificate
	if c == nil {
		t.Fatal("missing certificate")
	}
	if float64(c.CriticalEvents) <= c.Allowed {
		t.Errorf("certificate not exceeding budget: %v", c)
	}
	if c.String() == "" {
		t.Error("certificate must render")
	}
	t.Logf("certificate: %v", c)
}

func TestConstructionRejectsCASAlgorithms(t *testing.T) {
	res, err := Run(context.Background(), Config{
		N:         4,
		Algorithm: mutex.Build(mutex.NewCASChain),
		F:         bounds.Linear{C: 2},
	})
	if err == nil {
		t.Fatalf("CAS algorithm must be rejected, got result %+v", res)
	}
}

func TestConstructionDetectsExclusionViolation(t *testing.T) {
	// A fake lock that admits everyone immediately: both processes post CS
	// concurrently during the read phase, which the construction must
	// report as an exclusion violation.
	broken := func(sim *tso.Simulator) (tso.Program, error) {
		return func(p *tso.Proc) { p.CS() }, nil
	}
	res, err := Run(context.Background(), Config{N: 4, Algorithm: broken, F: bounds.Linear{C: 1}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Stopped != StopViolation || res.Violation == nil {
		t.Fatalf("stopped = %v, want exclusion violation", res.Stopped)
	}
}

func TestConstructionDetectsNonObstructionFreedom(t *testing.T) {
	// A "lock" that spins forever on an untouched variable can never reach
	// a special event after its first read; the solo budget must fire.
	var v *tso.Var
	stuck := func(sim *tso.Simulator) (tso.Program, error) {
		v = sim.Memory().NewVar("never")
		return func(p *tso.Proc) {
			for p.Read(v) == 0 {
			}
			p.CS()
		}, nil
	}
	res, err := Run(context.Background(), Config{N: 3, Algorithm: stuck, F: bounds.Linear{C: 2}, SoloBudget: 500})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Stopped != StopNotObstructionFree {
		t.Fatalf("stopped = %v, want solo-budget failure", res.Stopped)
	}
}

func TestConstructionMaxInductionCap(t *testing.T) {
	res, err := Run(context.Background(), Config{
		N:            10,
		Algorithm:    mutex.Build(mutex.NewSynthetic),
		F:            bounds.Affine{A: 16, C: 10},
		MaxInduction: 2,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Stopped != StopMaxInduction {
		t.Fatalf("stopped = %v, want induction cap", res.Stopped)
	}
	if res.FencesForced != 2 {
		t.Errorf("forced = %d, want 2", res.FencesForced)
	}
}

func TestPhaseRecordsShape(t *testing.T) {
	res, err := Run(context.Background(), Config{
		N:            8,
		Algorithm:    mutex.Build(mutex.NewSynthetic),
		F:            bounds.Affine{A: 16, C: 10},
		MaxInduction: 2,
		Check:        CheckInvariants,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Phases) < 6 {
		t.Fatalf("phases recorded = %d, want >= 6 (3 per induction step)", len(res.Phases))
	}
	wantOrder := []string{"read", "write", "regularize"}
	for i, ph := range res.Phases[:6] {
		if ph.Phase != wantOrder[i%3] {
			t.Errorf("phase %d = %s, want %s", i, ph.Phase, wantOrder[i%3])
		}
		if ph.Induction != i/3 {
			t.Errorf("phase %d induction = %d, want %d", i, ph.Induction, i/3)
		}
		if ph.ActiveBefore < ph.ActiveAfter {
			t.Errorf("phase %d active grew: %d -> %d", i, ph.ActiveBefore, ph.ActiveAfter)
		}
	}
}

func TestStopReasonStrings(t *testing.T) {
	for _, r := range []StopReason{StopActiveExhausted, StopMaxInduction, StopNonAdaptive, StopViolation, StopNotObstructionFree} {
		if r.String() == "" {
			t.Errorf("empty string for %d", int(r))
		}
	}
}

func TestConstructionDSMModel(t *testing.T) {
	res, err := Run(context.Background(), Config{
		N:         8,
		Model:     tso.DSM,
		Algorithm: mutex.Build(mutex.NewSynthetic),
		F:         bounds.Affine{A: 16, C: 10},
		Check:     CheckInvariants,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Certificate != nil || res.Violation != nil {
		t.Fatalf("unexpected failure: %+v", res)
	}
	if res.FencesForced < 2 {
		t.Errorf("DSM forced fences = %d, want >= 2", res.FencesForced)
	}
}

func TestConstructionCertifiesAllNonAdaptiveReadWriteLocks(t *testing.T) {
	// Every non-adaptive read/write lock in the library must earn a
	// non-adaptivity certificate when it claims linear adaptivity: the
	// construction's second outcome, exercised across algorithms.
	cases := []struct {
		name    string
		factory mutex.Factory
		n       int
	}{
		{"bakery", mutex.NewBakery, 12},
		{"filter", mutex.NewFilter, 12},
		{"tournament", mutex.NewTournament, 12},
		{"yanganderson", mutex.NewYangAnderson, 12},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Run(context.Background(), Config{
				N:         tc.n,
				Algorithm: mutex.Build(tc.factory),
				F:         bounds.Linear{C: 1},
				Check:     CheckInvariants,
			})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if res.Stopped != StopNonAdaptive {
				t.Fatalf("stopped = %v, want certificate (result %+v)", res.Stopped, res)
			}
			if res.Certificate == nil || float64(res.Certificate.CriticalEvents) <= res.Certificate.Allowed {
				t.Fatalf("bad certificate: %+v", res.Certificate)
			}
			t.Logf("%s: %v", tc.name, res.Certificate)
		})
	}
}

func TestConstructionSyntheticWithFullChecksAtLargerN(t *testing.T) {
	if testing.Short() {
		t.Skip("heavier invariant checking")
	}
	res, err := Run(context.Background(), Config{
		N:         20,
		Algorithm: mutex.Build(mutex.NewSynthetic),
		F:         bounds.Affine{A: 16, C: 10},
		Check:     CheckInvariants,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Certificate != nil || res.Violation != nil {
		t.Fatalf("unexpected failure: %+v", res)
	}
	if res.FencesForced < 10 {
		t.Errorf("forced = %d, want >= 10", res.FencesForced)
	}
	// Theorem 1's witness accounting.
	if res.WitnessCritical <= 0 {
		t.Errorf("witness critical = %d", res.WitnessCritical)
	}
}

func TestConstructionAgainstVMPrograms(t *testing.T) {
	// VM lock programs are first-class victims: the construction drives
	// the adapted bakery VM program to a non-adaptivity certificate just
	// like its native Go twin.
	res, err := Run(context.Background(), Config{
		N:         10,
		Algorithm: vmprog.Adapt(vmprog.MustBakery(10, false)),
		F:         bounds.Linear{C: 1},
		Check:     CheckInvariants,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stopped != StopNonAdaptive || res.Certificate == nil {
		t.Fatalf("stopped = %v, want certificate", res.Stopped)
	}
	t.Logf("VM bakery certificate: %v", res.Certificate)
}

func TestConstructionCertifiesBurnsLynch(t *testing.T) {
	res, err := Run(context.Background(), Config{
		N:         10,
		Algorithm: mutex.Build(mutex.NewBurnsLynch),
		F:         bounds.Linear{C: 1},
		Check:     CheckInvariants,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stopped != StopNonAdaptive || res.Certificate == nil {
		t.Fatalf("stopped = %v, want certificate (result %+v)", res.Stopped, res)
	}
}

func TestWitnessExtractionVerified(t *testing.T) {
	// The final step of Theorem 1's proof: the extracted witness execution
	// must have total contention FencesForced+1 with the witness having
	// completed FencesForced fences mid-passage.
	res, err := Run(context.Background(), Config{
		N:         14,
		Algorithm: mutex.Build(mutex.NewSynthetic),
		F:         bounds.Affine{A: 16, C: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.WitnessVerified {
		t.Fatalf("witness not verified: %+v", res)
	}
	if res.WitnessParticipants != res.FencesForced+1 {
		t.Errorf("participants = %d, want %d", res.WitnessParticipants, res.FencesForced+1)
	}
	t.Logf("witness p%d: %d fences at contention %d (verified)",
		res.Witness, res.FencesForced, res.WitnessParticipants)
}
