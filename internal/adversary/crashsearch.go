package adversary

import (
	"container/heap"
	"context"

	"priceadaptive/internal/fault"
	"priceadaptive/internal/rme"
	"priceadaptive/internal/rmr"
	"priceadaptive/internal/tso"
	"priceadaptive/internal/vmprog"
)

// CrashSearchConfig parameterizes the adversarial crash-schedule search.
// All randomness is drawn from a fault.Source seeded with Seed, so a fixed
// seed reproduces the exact search trajectory and witness.
type CrashSearchConfig struct {
	// Seed seeds the tie-breaking jitter of the best-first frontier.
	Seed int64
	// Budget bounds the number of node expansions. Defaults to 4096.
	Budget int
	// MaxCrashes bounds crash decisions across all processes (defaults to
	// 1); MaxPerProc bounds crashes of each process (defaults to 1).
	MaxCrashes int
	MaxPerProc int
	// Model is the cache model witnesses are priced under. Defaults to
	// rmr.ModelDSM.
	Model rmr.CacheModel
	// MaxLen caps schedule length, cutting off non-terminating spins the
	// state dedup does not already prune. Defaults to 4096.
	MaxLen int
}

func (c *CrashSearchConfig) defaults() {
	if c.Budget <= 0 {
		c.Budget = 4096
	}
	if c.MaxCrashes == 0 {
		c.MaxCrashes = 1
	}
	if c.MaxPerProc == 0 {
		c.MaxPerProc = 1
	}
	if c.Model == 0 {
		c.Model = rmr.ModelDSM
	}
	if c.MaxLen <= 0 {
		c.MaxLen = 4096
	}
}

// CrashSearchResult reports the outcome of one crash-schedule search.
type CrashSearchResult struct {
	// Witness is the most expensive completed schedule found, priced by
	// rme.ReplayRMR (nil when no schedule completed within budget - e.g. a
	// non-recoverable program whose every crashing run wedges).
	Witness *rme.Witness `json:"witness,omitempty"`
	// Expanded counts node expansions spent; Candidates counts completed
	// schedules considered; Violations counts pruned violating states.
	Expanded   int `json:"expanded"`
	Candidates int `json:"candidates"`
	Violations int `json:"violations"`
	// Exhausted reports that the frontier emptied before the budget did:
	// the search saw every reachable (deduplicated) schedule prefix.
	Exhausted bool `json:"exhausted"`
}

// searchNode is one frontier entry. Schedules are reconstructed through
// parent pointers, so a node only stores its own decision.
type searchNode struct {
	st     *vmprog.State
	parent int
	dec    tso.Decision
	depth  int
	// crashes / recBest / recCur / recovering carry the incremental
	// accounting the heuristic scores on: recBest is the best completed
	// recovery attempt's access count so far, recCur[p] the accesses of
	// p's in-progress recovery attempt.
	crashes    int
	recBest    int
	recCur     []int
	recovering []bool
	score      int
	seq        int // insertion order, for deterministic tie-breaking
}

type searchHeap []*searchNode

func (h searchHeap) Len() int { return len(h) }
func (h searchHeap) Less(i, j int) bool {
	if h[i].score != h[j].score {
		return h[i].score > h[j].score
	}
	return h[i].seq < h[j].seq
}
func (h searchHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *searchHeap) Push(x any)   { *h = append(*h, x.(*searchNode)) }
func (h *searchHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}

// CrashSearch runs a seeded, budgeted best-first search over crash
// schedules of the program on eng, looking for the schedule that maximizes
// post-recovery RMR cost (the quantity the crash-RMR bounds of Chan-Woelfel,
// arXiv:2106.03185, are stated over). The frontier is ordered by an
// incremental estimate of that cost - completed recovery attempts dominate,
// then in-progress recovery accesses, then crashes spent - with seeded
// jitter breaking ties, and deduplicated by state hash (keeping the best
// score per state; this is a heuristic prune, not a soundness argument:
// the result is a machine-checked lower bound on the worst case, not an
// upper bound). Completed schedules are priced authoritatively by
// rme.ReplayRMR, so the returned witness verifies by construction.
func CrashSearch(ctx context.Context, eng *vmprog.Engine, cfg CrashSearchConfig) (*CrashSearchResult, error) {
	cfg.defaults()
	src := fault.NewSource(cfg.Seed).Split("crashsearch")
	opts := vmprog.CrashOpts{MaxCrashes: cfg.MaxCrashes, MaxPerProc: cfg.MaxPerProc}
	n := eng.NumProcs()
	res := &CrashSearchResult{}

	nodes := []*searchNode{{
		st:         eng.Initial(),
		parent:     -1,
		recCur:     make([]int, n),
		recovering: make([]bool, n),
	}}
	frontier := &searchHeap{nodes[0]}
	seen := map[uint64]int{eng.Hash(nodes[0].st): 0}
	path := func(nd *searchNode) []tso.Decision {
		var out []tso.Decision
		for ; nd.parent >= 0; nd = nodes[nd.parent] {
			out = append(out, nd.dec)
		}
		for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
			out[i], out[j] = out[j], out[i]
		}
		return out
	}
	best := -1
	for res.Expanded < cfg.Budget && frontier.Len() > 0 {
		if res.Expanded%256 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		nd := heap.Pop(frontier).(*searchNode)
		res.Expanded++
		if eng.Violated(nd.st) {
			res.Violations++
			continue
		}
		if eng.AllDone(nd.st) {
			res.Candidates++
			sched := path(nd)
			rr, err := rme.ReplayRMR(eng, sched, cfg.Model)
			if err != nil {
				return nil, err
			}
			// Prefer more post-recovery RMRs; among equals, more crashes
			// (a crashing witness is more informative than a crash-free
			// run of the same cost).
			if rr.MaxRecoveryRMRs > best || (rr.MaxRecoveryRMRs == best && res.Witness != nil && rr.Crashes > res.Witness.Crashes) {
				best = rr.MaxRecoveryRMRs
				res.Witness = &rme.Witness{
					Program:         eng.Program().Name,
					N:               eng.NumProcs(),
					Model:           cfg.Model,
					Schedule:        sched,
					Crashes:         rr.Crashes,
					MaxRecoveryRMRs: rr.MaxRecoveryRMRs,
				}
			}
			continue
		}
		if nd.depth >= cfg.MaxLen {
			continue
		}
		for _, d := range eng.EnabledDecisions(nd.st, opts) {
			child := nd.st.Clone()
			ef, err := eng.ApplyEffect(child, d)
			if err != nil {
				return nil, err
			}
			c := &searchNode{
				st:         child,
				parent:     nd.seq,
				dec:        d,
				depth:      nd.depth + 1,
				crashes:    nd.crashes,
				recBest:    nd.recBest,
				recCur:     append([]int(nil), nd.recCur...),
				recovering: append([]bool(nil), nd.recovering...),
			}
			p := ef.P
			switch {
			case ef.Crash:
				c.crashes++
				c.recovering[p] = false
			case ef.Recover:
				c.recovering[p] = true
				c.recCur[p] = 0
			case ef.Enter:
				c.recovering[p] = false
			default:
				if ef.Kind != vmprog.EffectNone && c.recovering[p] {
					c.recCur[p]++
				}
				if ef.Exit && c.recovering[p] {
					if c.recCur[p] > c.recBest {
						c.recBest = c.recCur[p]
					}
					c.recovering[p] = false
				}
			}
			c.score = score(c) + src.Intn(8)
			h := eng.Hash(child)
			if prev, ok := seen[h]; ok && prev >= c.score {
				continue
			}
			seen[h] = c.score
			c.seq = len(nodes)
			nodes = append(nodes, c)
			heap.Push(frontier, c)
		}
	}
	res.Exhausted = frontier.Len() == 0
	return res, nil
}

// score ranks a frontier node: completed recovery cost dominates, then the
// most expensive in-progress recovery attempt, then crashes already spent
// (a crash is an investment the search should try to cash in), then
// completed passages (to pull schedules toward termination), minus depth
// (to prefer short witnesses among equals).
func score(nd *searchNode) int {
	inprog, done := 0, 0
	for p := range nd.recovering {
		if nd.recovering[p] && nd.recCur[p] > inprog {
			inprog = nd.recCur[p]
		}
		if nd.st.Procs[p].Done {
			done++
		}
	}
	return nd.recBest*4096 + inprog*256 + nd.crashes*64 + done*16 - nd.depth
}
