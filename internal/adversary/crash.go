package adversary

import (
	"fmt"

	"priceadaptive/internal/fault"
	"priceadaptive/internal/tso"
)

// CrashConfig parameterizes a crash-scheduling adversary run. All randomness
// is drawn from a fault.Source seeded with Seed, so a fixed seed reproduces
// the exact decision stream (and therefore the exact execution).
type CrashConfig struct {
	// Seed seeds the decision stream.
	Seed int64
	// CrashProb is the per-decision probability of crashing an eligible
	// process instead of scheduling one. Defaults to 0.05.
	CrashProb float64
	// MaxCrashesPerProc bounds how often each process may crash. Defaults
	// to 1.
	MaxCrashesPerProc int
	// TotalCrashes bounds crashes across all processes. Defaults to N.
	TotalCrashes int
	// CommitProb is the probability of committing a buffered write of the
	// chosen process instead of stepping it.
	CommitProb float64
}

// CrashRunResult extends a scheduler run with crash accounting.
type CrashRunResult struct {
	tso.RunResult
	// Crashes is the number of crash decisions taken.
	Crashes int
	// Recoveries is the number of Recover transitions granted.
	Recoveries int
}

// RunWithCrashes drives the simulator with a seeded random adversary that
// may, at any decision point, crash a started process (within the configured
// bounds) instead of scheduling one. Crashed processes are recovered by
// ordinary scheduling decisions: stepping a crashed process executes its
// Recover transition and re-runs the interrupted passage. The run is
// single-threaded and therefore deterministic under Seed.
func RunWithCrashes(s *tso.Simulator, cfg CrashConfig, maxSteps int) (CrashRunResult, error) {
	n := s.Config().N
	if cfg.CrashProb == 0 {
		cfg.CrashProb = 0.05
	}
	if cfg.MaxCrashesPerProc <= 0 {
		cfg.MaxCrashesPerProc = 1
	}
	if cfg.TotalCrashes <= 0 {
		cfg.TotalCrashes = n
	}
	src := fault.NewSource(cfg.Seed)
	var res CrashRunResult
	for res.Steps < maxSteps {
		allDone := true
		for i := 0; i < n; i++ {
			if !s.Done(tso.ProcID(i)) {
				allDone = false
				break
			}
		}
		if allDone {
			res.Completed = true
			res.Violation = s.ExclusionViolation()
			return res, nil
		}
		// Crash decision: pick a victim among started, live, not-yet-crashed
		// processes still under their crash budget.
		if res.Crashes < cfg.TotalCrashes && src.Bool(cfg.CrashProb) {
			victims := make([]tso.ProcID, 0, n)
			for i := 0; i < n; i++ {
				id := tso.ProcID(i)
				if s.Started(id) && !s.Done(id) && !s.Crashed(id) && s.Crashes(id) < cfg.MaxCrashesPerProc {
					victims = append(victims, id)
				}
			}
			if len(victims) > 0 {
				id := victims[src.Intn(len(victims))]
				if _, err := s.Crash(id); err != nil {
					return res, fmt.Errorf("crash decision %d (p%d): %w", res.Steps, id, err)
				}
				res.Crashes++
				res.Steps++
				continue
			}
		}
		runnable := make([]tso.ProcID, 0, n)
		for i := 0; i < n; i++ {
			if !s.Done(tso.ProcID(i)) {
				runnable = append(runnable, tso.ProcID(i))
			}
		}
		id := runnable[src.Intn(len(runnable))]
		var err error
		switch {
		case !s.Crashed(id) && s.BufferSize(id) > 0 && src.Bool(cfg.CommitProb):
			_, err = s.Commit(id)
		default:
			if s.Crashed(id) {
				res.Recoveries++
			}
			_, err = s.Step(id)
		}
		if err != nil {
			return res, fmt.Errorf("step %d (p%d): %w", res.Steps, id, err)
		}
		res.Steps++
	}
	res.Violation = s.ExclusionViolation()
	return res, tso.ErrStepBudget
}
