package adversary

import (
	"context"
	"reflect"
	"testing"

	"priceadaptive/internal/analysis/por"
	"priceadaptive/internal/fault"
	"priceadaptive/internal/tso"
	"priceadaptive/internal/vmprog"
)

func searchEngine(t testing.TB, name string, n int) *vmprog.Engine {
	t.Helper()
	p, err := vmprog.Lookup(name, n)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := vmprog.NewEngineOrdering(p, n, tso.TSO)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestCrashSearchWitness runs the adversarial search on every recoverable
// RME program and checks the result is a genuine, machine-checkable crash
// witness: at least one crash, at least one post-recovery RMR, and an exact
// replay on both an unreduced engine and one carrying pruning facts (the
// reduced-vs-unreduced differential).
func TestCrashSearchWitness(t *testing.T) {
	for _, name := range []string{"rtas", "km-rme", "dm-tas", "dm-queue"} {
		t.Run(name, func(t *testing.T) {
			const n = 2
			eng := searchEngine(t, name, n)
			res, err := CrashSearch(context.Background(), eng, CrashSearchConfig{
				Seed: 7, Budget: 20000, MaxCrashes: 2, MaxPerProc: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			w := res.Witness
			if w == nil {
				t.Fatalf("no witness found (expanded=%d candidates=%d)", res.Expanded, res.Candidates)
			}
			if w.Crashes < 1 {
				t.Errorf("witness has no crashes: %+v", w)
			}
			if w.MaxRecoveryRMRs < 1 {
				t.Errorf("witness prices recovery at 0 RMRs: %+v", w)
			}
			p, err := vmprog.Lookup(name, n)
			if err != nil {
				t.Fatal(err)
			}
			facts, err := por.Facts(p, n)
			if err != nil {
				t.Fatal(err)
			}
			reduced := searchEngine(t, name, n)
			if err := reduced.UsePruning(facts); err != nil {
				t.Fatal(err)
			}
			if err := w.Verify(searchEngine(t, name, n), reduced); err != nil {
				t.Errorf("witness failed verification: %v", err)
			}
		})
	}
}

// TestCrashSearchDeterministic pins seed-reproducibility: the same seed must
// yield the identical witness schedule.
func TestCrashSearchDeterministic(t *testing.T) {
	cfg := CrashSearchConfig{Seed: 3, Budget: 4000, MaxCrashes: 2, MaxPerProc: 1}
	a, err := CrashSearch(context.Background(), searchEngine(t, "rtas", 2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CrashSearch(context.Background(), searchEngine(t, "rtas", 2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Witness == nil || b.Witness == nil {
		t.Fatalf("missing witness: %v / %v", a.Witness, b.Witness)
	}
	if !reflect.DeepEqual(a.Witness, b.Witness) {
		t.Errorf("same seed, different witnesses:\n%+v\n%+v", a.Witness, b.Witness)
	}
	if a.Expanded != b.Expanded || a.Candidates != b.Candidates {
		t.Errorf("same seed, different search stats: %+v vs %+v", a, b)
	}
}

// TestCrashSearchBudget pins that the expansion budget is respected.
func TestCrashSearchBudget(t *testing.T) {
	res, err := CrashSearch(context.Background(), searchEngine(t, "km-rme", 2), CrashSearchConfig{
		Seed: 1, Budget: 50, MaxCrashes: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Expanded > 50 {
		t.Errorf("expanded %d nodes, budget was 50", res.Expanded)
	}
}

// fuzzPrograms are the crash-relevant registry programs the fuzzer walks:
// the recoverable RME tier plus the deliberately broken rtas-dirty (whose
// exclusion violation is expected and does not void the crash invariants).
var fuzzPrograms = []string{"rtas", "rtas-dirty", "km-rme", "dm-tas", "dm-queue", "tas"}

// FuzzCrashSchedules drives seeded random crash schedules through the fast
// engine and asserts the crash/recover invariants on every step: a crash
// drops the write buffer and zeroes the volatile registers, recovery
// re-enters through the recover section, and a crashed process is never
// observed inside the critical section.
func FuzzCrashSchedules(f *testing.F) {
	for _, seed := range []int64{0, 1, 7, 42, 1 << 40} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		for _, name := range fuzzPrograms {
			const n = 2
			p, err := vmprog.Lookup(name, n)
			if err != nil {
				t.Fatal(err)
			}
			eng, err := vmprog.NewEngineOrdering(p, n, tso.TSO)
			if err != nil {
				t.Fatal(err)
			}
			src := fault.NewSource(seed).Split(name)
			opts := vmprog.CrashOpts{MaxCrashes: 2, MaxPerProc: 1}
			st := eng.Initial()
			for step := 0; step < 400; step++ {
				if eng.AllDone(st) || eng.Violated(st) {
					break
				}
				ds := eng.EnabledDecisions(st, opts)
				if len(ds) == 0 {
					break // wedged (possible for non-recoverable programs)
				}
				d := ds[src.Intn(len(ds))]
				wasCrashed := st.Procs[d.P].Crashed
				if err := eng.Apply(st, d); err != nil {
					t.Fatalf("%s seed=%d step=%d: %v", name, seed, step, err)
				}
				pr := &st.Procs[d.P]
				if d.Crash {
					if !pr.Crashed {
						t.Fatalf("%s seed=%d: crash decision left process %d un-crashed", name, seed, d.P)
					}
					if len(pr.Buf) != 0 {
						t.Errorf("%s seed=%d: crash did not drop the write buffer of %d", name, seed, d.P)
					}
					for r, v := range pr.Regs {
						if v != 0 {
							t.Errorf("%s seed=%d: crash left volatile register %d of proc %d = %d", name, seed, r, d.P, v)
						}
					}
					if pr.PC != p.Recover {
						t.Errorf("%s seed=%d: crashed proc %d at pc %d, want recover pc %d", name, seed, d.P, pr.PC, p.Recover)
					}
					if pr.Fencing || pr.InExit {
						t.Errorf("%s seed=%d: crash left proc %d fencing=%v inexit=%v", name, seed, d.P, pr.Fencing, pr.InExit)
					}
				} else if wasCrashed && pr.Crashed {
					t.Errorf("%s seed=%d: step of crashed proc %d did not recover it", name, seed, d.P)
				}
				for id := range st.Procs {
					if st.Procs[id].Crashed && eng.PendingCS(st, id) {
						t.Errorf("%s seed=%d: crashed process %d is inside the critical section", name, seed, id)
					}
				}
			}
		}
	})
}
