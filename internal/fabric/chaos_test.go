package fabric

import (
	"encoding/json"
	"os"
	"testing"
)

// TestFleetChaosConvergence is the fabric's end-to-end robustness gate: 25
// seeded kill/restart cycles of a 1-dispatcher/3-worker fleet — every cycle
// kills or closes worker nodes mid-flight, one seeded cycle restarts the
// dispatcher itself — under injected store, worker and context faults, then
// a fault-free convergence pass. The fleet must converge: no lost jobs, no
// duplicated side effects (no recorded artifact checksum ever changes),
// every artifact on every store intact.
//
// Set FLEET_CHAOS_REPORT=<path> to persist the JSON report (CI uploads it).
func TestFleetChaosConvergence(t *testing.T) {
	rep, err := FleetChaos(t.TempDir(), FleetChaosOptions{Seed: 20260808, Cycles: 25})
	if err != nil {
		t.Fatalf("fleet chaos harness: %v", err)
	}
	if path := os.Getenv("FLEET_CHAOS_REPORT"); path != "" {
		data, merr := json.MarshalIndent(rep, "", "  ")
		if merr == nil {
			merr = os.WriteFile(path, append(data, '\n'), 0o644)
		}
		if merr != nil {
			t.Errorf("write fleet chaos report: %v", merr)
		}
	}
	t.Logf("fleet chaos: %d cycles (%d node kills, %d clean closes, %d dispatcher restarts), %d submitted, %d distinct, %d assignments, %d reassignments, %d lease expiries, %d node deaths, %d integrity rejects, %d replications",
		rep.Cycles, rep.NodeKills, rep.NodeCloses, rep.DispatcherRestarts,
		rep.Submitted, rep.DistinctJobs, rep.Assignments, rep.Reassignments,
		rep.LeaseExpiries, rep.NodeDeaths, rep.IntegrityRejects, rep.Replications)
	if !rep.Converged {
		t.Fatalf("fleet did not converge: lost=%v dup_effects=%v divergent=%d dispatcher=%+v workers=%+v",
			rep.Lost, rep.DupEffects, rep.Divergent, rep.DispatcherIntegrity, rep.WorkerIntegrity)
	}
	// Guard against a vacuous pass: the seed must actually have exercised
	// hard node kills, the dispatcher restart, and lease-driven recovery.
	if rep.NodeKills == 0 {
		t.Error("seed produced no hard node kills — kill plumbing is dead")
	}
	if rep.NodeCloses == 0 {
		t.Error("seed produced no clean node closes")
	}
	if rep.DispatcherRestarts != 1 {
		t.Errorf("dispatcher restarts = %d, want exactly 1", rep.DispatcherRestarts)
	}
	if rep.NodeKills+rep.NodeCloses < 25 {
		t.Errorf("only %d node kill/close events — fewer than one per cycle", rep.NodeKills+rep.NodeCloses)
	}
	if rep.Reassignments == 0 && rep.NodeDeaths == 0 {
		t.Error("no reassignment or node death ever happened — lease recovery went unexercised")
	}
	if rep.Replications == 0 {
		t.Error("no artifact was ever replicated dispatcher-side")
	}
}

// TestFleetChaosDeterministicSchedule: the kill/close schedule, the
// dispatcher-restart cycle and the submission mix are pure functions of the
// seed.
func TestFleetChaosDeterministicSchedule(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opts := FleetChaosOptions{Seed: 11, Cycles: 6}
	a, err := FleetChaos(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FleetChaos(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.NodeKills != b.NodeKills || a.NodeCloses != b.NodeCloses || a.Submitted != b.Submitted {
		t.Fatalf("same seed diverged: run1 kills=%d closes=%d submitted=%d, run2 kills=%d closes=%d submitted=%d",
			a.NodeKills, a.NodeCloses, a.Submitted, b.NodeKills, b.NodeCloses, b.Submitted)
	}
	if !a.Converged || !b.Converged {
		t.Fatalf("convergence: run1=%v run2=%v", a.Converged, b.Converged)
	}
}
