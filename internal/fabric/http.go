package fabric

import (
	"encoding/json"
	"errors"
	"net/http"

	"priceadaptive/internal/jobs"
)

// Handler exposes a Dispatcher over HTTP: the full v1 jobs API (clients
// cannot tell the fleet from a single padserver) plus the /fabric/v1 node
// protocol and fleet report on the same mux.
func Handler(d *Dispatcher) http.Handler {
	mux := http.NewServeMux()
	jobs.RegisterRoutes(mux, d, "/v1", false)
	jobs.RegisterRoutes(mux, d, "", true)
	RegisterFabricRoutes(mux, d)
	return mux
}

// RegisterFabricRoutes installs the node protocol under /fabric/v1:
//
//	POST /fabric/v1/register    node announce + reconcile
//	POST /fabric/v1/heartbeat   liveness + lease renewal + control traffic
//	POST /fabric/v1/pull        fetch pending assignments
//	POST /fabric/v1/complete    terminal report with artifact replication
//	GET  /fabric/v1/nodes       the FleetReport
//
// Errors use the v1 envelope: unknown_node → 404 (the node must
// re-register), integrity_mismatch → 409, store trouble and shutdown → 503
// with Retry-After.
func RegisterFabricRoutes(mux *http.ServeMux, d *Dispatcher) {
	post := func(path string, h func(w http.ResponseWriter, r *http.Request)) {
		mux.HandleFunc("POST /fabric/v1/"+path, h)
	}
	post("register", func(w http.ResponseWriter, r *http.Request) {
		var req RegisterRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			jobs.WriteError(w, http.StatusBadRequest, jobs.CodeInvalidRequest, err, 0)
			return
		}
		resp, err := d.Register(req)
		if err != nil {
			fabricError(w, err)
			return
		}
		jobs.WriteJSON(w, http.StatusOK, resp)
	})
	post("heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req HeartbeatRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			jobs.WriteError(w, http.StatusBadRequest, jobs.CodeInvalidRequest, err, 0)
			return
		}
		resp, err := d.Heartbeat(req)
		if err != nil {
			fabricError(w, err)
			return
		}
		jobs.WriteJSON(w, http.StatusOK, resp)
	})
	post("pull", func(w http.ResponseWriter, r *http.Request) {
		var req PullRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			jobs.WriteError(w, http.StatusBadRequest, jobs.CodeInvalidRequest, err, 0)
			return
		}
		resp, err := d.Pull(req)
		if err != nil {
			fabricError(w, err)
			return
		}
		jobs.WriteJSON(w, http.StatusOK, resp)
	})
	post("complete", func(w http.ResponseWriter, r *http.Request) {
		var req CompleteRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			jobs.WriteError(w, http.StatusBadRequest, jobs.CodeInvalidRequest, err, 0)
			return
		}
		resp, err := d.Complete(req)
		if err != nil {
			fabricError(w, err)
			return
		}
		jobs.WriteJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("GET /fabric/v1/nodes", func(w http.ResponseWriter, r *http.Request) {
		jobs.WriteJSON(w, http.StatusOK, d.Report())
	})
}

// fabricError maps node-protocol errors onto the unified envelope.
func fabricError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrUnknownNode):
		jobs.WriteError(w, http.StatusNotFound, CodeUnknownNode, err, 0)
	case errors.Is(err, ErrIntegrity):
		jobs.WriteError(w, http.StatusConflict, CodeIntegrity, err, 0)
	case errors.Is(err, jobs.ErrNotFound):
		jobs.WriteError(w, http.StatusNotFound, jobs.CodeNotFound, err, 0)
	case errors.Is(err, jobs.ErrStoreUnavailable):
		jobs.WriteError(w, http.StatusServiceUnavailable, jobs.CodeStoreUnavailable, err, 5)
	case errors.Is(err, jobs.ErrClosed):
		jobs.WriteError(w, http.StatusServiceUnavailable, jobs.CodeDraining, err, 5)
	default:
		jobs.WriteError(w, http.StatusBadRequest, jobs.CodeInvalidRequest, err, 0)
	}
}
