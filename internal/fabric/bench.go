package fabric

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"time"

	"priceadaptive/internal/jobs"
)

// LoadGenOptions sizes the dispatcher load generator.
type LoadGenOptions struct {
	// Nodes and Capacity shape the fleet (defaults 3 and 4).
	Nodes    int
	Capacity int
	// Jobs is how many distinct synthetic jobs to push through (default 200).
	Jobs int
	// Work is the hash-chain length per job (default 20000 iterations), the
	// knob between placement-bound and execution-bound regimes.
	Work int
	// Poll is the workers' pull cadence (default 2ms — tight, so the bench
	// measures the dispatcher, not the polling interval).
	Poll time.Duration
}

func (o LoadGenOptions) withDefaults() LoadGenOptions {
	if o.Nodes <= 0 {
		o.Nodes = 3
	}
	if o.Capacity <= 0 {
		o.Capacity = 4
	}
	if o.Jobs <= 0 {
		o.Jobs = 200
	}
	if o.Work <= 0 {
		o.Work = 20000
	}
	if o.Poll <= 0 {
		o.Poll = 2 * time.Millisecond
	}
	return o
}

// Quantiles summarizes a latency sample in seconds.
type Quantiles struct {
	Count int     `json:"count"`
	P50   float64 `json:"p50_sec"`
	P90   float64 `json:"p90_sec"`
	P99   float64 `json:"p99_sec"`
	Max   float64 `json:"max_sec"`
}

// LoadGenReport is the dispatcher throughput artifact seeded into
// BENCH_server.json. Numbers are from an in-process fleet (no TCP), so they
// bound the dispatcher's own bookkeeping, not network round-trips.
type LoadGenReport struct {
	Nodes    int `json:"nodes"`
	Capacity int `json:"capacity"`
	Jobs     int `json:"jobs"`
	Work     int `json:"work"`
	// SubmitPerSec is intake throughput over the v1 API (accept + persist +
	// place); SubmitLatency the per-call distribution.
	SubmitPerSec  float64   `json:"submit_per_sec"`
	SubmitLatency Quantiles `json:"submit_latency"`
	// Placement is the dispatcher's accept-to-place latency distribution
	// (pad_fleet_placement_seconds raw samples).
	Placement Quantiles `json:"placement"`
	// E2ESec is submit-first to last-artifact-replicated wall time, and
	// JobsPerSec the end-to-end completion throughput it implies.
	E2ESec     float64 `json:"e2e_sec"`
	JobsPerSec float64 `json:"jobs_per_sec"`
	// Replications confirms every artifact landed dispatcher-side.
	Replications int64 `json:"replications"`
}

// quantiles computes the summary of sample (seconds), sorting a copy.
func quantiles(sample []float64) Quantiles {
	if len(sample) == 0 {
		return Quantiles{}
	}
	s := append([]float64(nil), sample...)
	sort.Float64s(s)
	at := func(p float64) float64 {
		i := int(math.Ceil(p*float64(len(s)))) - 1
		if i < 0 {
			i = 0
		}
		return s[i]
	}
	return Quantiles{
		Count: len(s),
		P50:   at(0.50),
		P90:   at(0.90),
		P99:   at(0.99),
		Max:   s[len(s)-1],
	}
}

// LoadGen boots an in-process fleet (dispatcher + Nodes workers over the
// Router transport, wall clock, no injected faults), pushes Jobs distinct
// synthetic jobs through the v1 API, waits for full completion, and reports
// intake throughput, placement-latency quantiles, and end-to-end completion
// rate. dir must be empty or fresh; artifacts land under it.
func LoadGen(ctx context.Context, dir string, opts LoadGenOptions) (*LoadGenReport, error) {
	opts = opts.withDefaults()
	store, err := jobs.Open(dir + "/dispatcher")
	if err != nil {
		return nil, err
	}
	d := NewDispatcher(store, DispatcherOptions{
		// Wall-clock fleet with a snappy sweep; leases are generous because
		// the bench injects no faults — nothing should ever expire.
		LeaseTTL: 30 * time.Second,
		NodeTTL:  20 * time.Second,
		Sweep:    50 * time.Millisecond,
	})
	if _, err := d.Recover(); err != nil {
		return nil, err
	}
	d.Start()
	defer d.Close()

	router := NewRouter()
	router.Swap(Handler(d))
	workers := make([]*Worker, 0, opts.Nodes)
	defer func() {
		for _, w := range workers {
			w.Close()
		}
	}()
	for i := 0; i < opts.Nodes; i++ {
		w, err := NewWorker(WorkerOptions{
			Name:       fmt.Sprintf("bench%d", i),
			Dispatcher: "http://dispatcher",
			DataDir:    fmt.Sprintf("%s/bench%d", dir, i),
			Capacity:   opts.Capacity,
			HTTP:       router.Client(),
			Poll:       opts.Poll,
		})
		if err != nil {
			return nil, err
		}
		w.Start()
		workers = append(workers, w)
	}

	client := &jobs.Client{BaseURL: "http://dispatcher", HTTP: router.Client()}
	ids := make([]string, 0, opts.Jobs)
	submitLat := make([]float64, 0, opts.Jobs)
	start := time.Now() // padvet:allow time-now benchmark measures real wall-clock throughput
	for i := 0; i < opts.Jobs; i++ {
		params, _ := json.Marshal(jobs.SyntheticParams{I: i, Work: opts.Work})
		t0 := time.Now() // padvet:allow time-now benchmark measures real submit latency
		resp, err := client.Submit(ctx, jobs.Spec{Kind: jobs.KindSynthetic, Params: params})
		if err != nil {
			return nil, fmt.Errorf("submit %d: %w", i, err)
		}
		submitLat = append(submitLat, time.Since(t0).Seconds())
		ids = append(ids, resp.ID)
	}
	submitDone := time.Now() // padvet:allow time-now benchmark measures real wall-clock throughput

	if _, err := client.WaitMany(ctx, ids, opts.Poll); err != nil {
		return nil, fmt.Errorf("wait for fleet drain: %w", err)
	}
	e2e := time.Since(start)

	rep := d.Report()
	out := &LoadGenReport{
		Nodes:         opts.Nodes,
		Capacity:      opts.Capacity,
		Jobs:          opts.Jobs,
		Work:          opts.Work,
		SubmitPerSec:  float64(opts.Jobs) / submitDone.Sub(start).Seconds(),
		SubmitLatency: quantiles(submitLat),
		Placement:     quantiles(d.PlacementLatencies()),
		E2ESec:        e2e.Seconds(),
		JobsPerSec:    float64(opts.Jobs) / e2e.Seconds(),
		Replications:  rep.Replications,
	}
	if out.Replications != int64(opts.Jobs) {
		return out, fmt.Errorf("loadgen: %d jobs but %d artifacts replicated", opts.Jobs, out.Replications)
	}
	return out, nil
}
