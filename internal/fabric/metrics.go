package fabric

import (
	"sync"

	"priceadaptive/internal/obsv"
)

// fleetMetrics backs the dispatcher's pad_fleet_* instruments. Like the job
// queue's metrics, the obsv registry is the source of truth and the
// FleetReport counters are derived views over it, so the Prometheus scrape
// and the /fabric/v1/nodes report can never disagree.
type fleetMetrics struct {
	reg *obsv.Registry

	submitted        *obsv.Counter
	deduped          *obsv.Counter
	cacheHits        *obsv.Counter
	registrations    *obsv.Counter
	heartbeats       *obsv.Counter
	assignments      *obsv.Counter
	reassignments    *obsv.Counter
	leaseExpiries    *obsv.Counter
	nodeDeaths       *obsv.Counter
	integrityRejects *obsv.Counter
	divergent        *obsv.Counter
	adopted          *obsv.Counter
	replicatedBytes  *obsv.Counter
	replications     *obsv.Counter
	completions      *obsv.CounterVec // node x state
	placement        *obsv.Histogram

	// placements retains raw placement latencies (seconds, bounded) for the
	// quantile summary the load-generator bench publishes.
	mu         sync.Mutex
	placements []float64 // guarded by mu
}

// placementCap bounds the retained raw latencies; the histogram keeps
// aggregating past it.
const placementCap = 100_000

func newFleetMetrics(reg *obsv.Registry) *fleetMetrics {
	if reg == nil {
		reg = obsv.NewRegistry()
	}
	m := &fleetMetrics{reg: reg}
	m.submitted = reg.Counter("pad_fleet_submitted_total", "Submissions accepted by the dispatcher.")
	m.deduped = reg.Counter("pad_fleet_deduped_total", "Submissions joined to an already queued/running fleet job.")
	m.cacheHits = reg.Counter("pad_fleet_cache_hits_total", "Submissions served from an already replicated artifact.")
	m.registrations = reg.Counter("pad_fleet_registrations_total", "Worker node registrations (including re-registrations).")
	m.heartbeats = reg.Counter("pad_fleet_heartbeats_total", "Worker heartbeats received.")
	m.assignments = reg.Counter("pad_fleet_assignments_total", "Job placements onto a node (first assignment or reassignment).")
	m.reassignments = reg.Counter("pad_fleet_reassignments_total", "Jobs re-queued off a node after a lease expiry or node death.")
	m.leaseExpiries = reg.Counter("pad_fleet_lease_expiries_total", "Individual assignment leases that expired.")
	m.nodeDeaths = reg.Counter("pad_fleet_node_deaths_total", "Nodes expired after missing heartbeats past the node TTL.")
	m.integrityRejects = reg.Counter("pad_fleet_integrity_rejects_total", "Completions refused because the artifact failed its sha256 check.")
	m.divergent = reg.Counter("pad_fleet_divergent_artifacts_total", "Duplicate completions whose artifact checksum differed from the recorded one (duplicated side effects).")
	m.adopted = reg.Counter("pad_fleet_adoptions_total", "In-progress jobs adopted from a re-registering node instead of re-run.")
	m.replicatedBytes = reg.Counter("pad_fleet_replicated_bytes_total", "Artifact bytes replicated dispatcher-side.")
	m.replications = reg.Counter("pad_fleet_replications_total", "Artifacts replicated dispatcher-side.")
	m.completions = reg.CounterVec("pad_fleet_completions_total", "Completion reports accepted, by node and terminal state.", "node", "state")
	m.placement = reg.Histogram("pad_fleet_placement_seconds", "Latency from job acceptance to node placement.", nil)
	return m
}

// registerGauges installs scrape-time gauges over the dispatcher's live
// state. Called once from NewDispatcher.
func (m *fleetMetrics) registerGauges(d *Dispatcher) {
	m.reg.GaugeFunc("pad_fleet_nodes_alive", "Registered live worker nodes.",
		func() float64 { d.mu.Lock(); defer d.mu.Unlock(); return float64(len(d.nodes)) })
	m.reg.GaugeFunc("pad_fleet_capacity", "Fleet-wide execution capacity of live nodes.",
		func() float64 {
			d.mu.Lock()
			defer d.mu.Unlock()
			total := 0
			for _, n := range d.nodes {
				total += n.capacity
			}
			return float64(total)
		})
	m.reg.GaugeFunc("pad_fleet_inflight", "Assignments currently booked on nodes.",
		func() float64 { d.mu.Lock(); defer d.mu.Unlock(); return float64(d.inflightLocked()) })
	m.reg.GaugeFunc("pad_fleet_queue_depth", "Accepted jobs not yet placed on a node.",
		func() float64 { d.mu.Lock(); defer d.mu.Unlock(); return float64(len(d.queue)) })
}

// observePlacement records one accept-to-place latency.
func (m *fleetMetrics) observePlacement(sec float64) {
	m.placement.Observe(sec)
	m.mu.Lock()
	if len(m.placements) < placementCap {
		m.placements = append(m.placements, sec)
	}
	m.mu.Unlock()
}

// placementLatencies returns a copy of the retained raw latencies.
func (m *fleetMetrics) placementLatencies() []float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]float64, len(m.placements))
	copy(out, m.placements)
	return out
}
