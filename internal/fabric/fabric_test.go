package fabric

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"priceadaptive/internal/fault"
	"priceadaptive/internal/jobs"
)

func manualDispatcher(t *testing.T, clk *fault.Manual, opts DispatcherOptions) (*Dispatcher, *jobs.Store) {
	t.Helper()
	store, err := jobs.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts.Clock = clk
	d := NewDispatcher(store, opts)
	// No Start(): manual-clock tests drive Sweep() by hand.
	t.Cleanup(d.Close)
	return d, store
}

func submitSynthetic(t *testing.T, d *Dispatcher, i int) jobs.Status {
	t.Helper()
	params, _ := json.Marshal(jobs.SyntheticParams{I: i})
	st, _, err := d.Submit(jobs.Spec{Kind: jobs.KindSynthetic, Params: params})
	if err != nil {
		t.Fatalf("submit %d: %v", i, err)
	}
	return st
}

func mustRegister(t *testing.T, d *Dispatcher, node string, capacity int) RegisterResponse {
	t.Helper()
	resp, err := d.Register(RegisterRequest{Node: node, Capacity: capacity})
	if err != nil {
		t.Fatalf("register %s: %v", node, err)
	}
	return resp
}

// doneReport builds a valid Complete for a pulled assignment by actually
// computing the synthetic artifact the worker would produce.
func doneReport(t *testing.T, node string, a Assignment) CompleteRequest {
	t.Helper()
	ctx := context.Background() // nosleep:allow test helper
	res, err := jobs.RunSynthetic(ctx, a.Spec.Params)
	if err != nil {
		t.Fatalf("run synthetic: %v", err)
	}
	raw, _ := json.Marshal(res)
	return CompleteRequest{
		Node: node, ID: a.ID, State: jobs.StateDone,
		Result: raw, ResultSum: jobs.Sum(raw),
	}
}

// TestPlacementLeastLoaded: queued jobs land on the node with the lowest
// booking ratio, and bookings never exceed capacity.
func TestPlacementLeastLoaded(t *testing.T) {
	clk := fault.NewManual(time.Unix(0, 0))
	d, _ := manualDispatcher(t, clk, DispatcherOptions{})
	mustRegister(t, d, "big", 4)
	mustRegister(t, d, "small", 1)

	for i := 0; i < 6; i++ {
		submitSynthetic(t, d, i)
	}
	rep := d.Report()
	if rep.Inflight != 5 {
		t.Fatalf("inflight = %d, want 5 (fleet capacity)", rep.Inflight)
	}
	if rep.QueueDepth != 1 {
		t.Fatalf("queue depth = %d, want 1 (over capacity)", rep.QueueDepth)
	}
	byNode := map[string]int{}
	for _, n := range rep.Nodes {
		byNode[n.Node] = n.Inflight
		if n.Inflight > n.Capacity {
			t.Fatalf("node %s over-booked: %d > %d", n.Node, n.Inflight, n.Capacity)
		}
	}
	// Ratio-based spread: the first job goes to an empty node; with 0/4 vs
	// 0/1 tie on ratio the lower-inflight/name rule picks deterministically,
	// and the 1-slot node must end up full.
	if byNode["small"] != 1 || byNode["big"] != 4 {
		t.Fatalf("placement spread = %v, want small:1 big:4", byNode)
	}
	// Pull delivers the booked assignments.
	pr, err := d.Pull(PullRequest{Node: "big", Max: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.Assignments) != 4 {
		t.Fatalf("pull big = %d assignments, want 4", len(pr.Assignments))
	}
}

// TestLeaseExpiryReassignment: a delivered assignment whose lease lapses
// (worker heartbeats, but stops reporting the job) is re-queued and
// immediately re-placed — the assignment recycles with a fresh lease and a
// consumed attempt, and a late report from the lapsed execution is still
// accepted.
func TestLeaseExpiryReassignment(t *testing.T) {
	clk := fault.NewManual(time.Unix(0, 0))
	d, _ := manualDispatcher(t, clk, DispatcherOptions{
		LeaseTTL: 10 * time.Second,
		NodeTTL:  time.Hour, // isolate lease expiry from node death
	})
	mustRegister(t, d, "a", 1)
	st := submitSynthetic(t, d, 1)
	pr, err := d.Pull(PullRequest{Node: "a", Max: 1})
	if err != nil || len(pr.Assignments) != 1 {
		t.Fatalf("pull: %v, %d assignments", err, len(pr.Assignments))
	}

	clk.Advance(5 * time.Second)
	// Heartbeat WITHOUT the job: node alive, lease not renewed.
	if _, err := d.Heartbeat(HeartbeatRequest{Node: "a"}); err != nil {
		t.Fatal(err)
	}
	clk.Advance(6 * time.Second)
	d.Sweep()
	rep := d.Report()
	if rep.LeaseExpiries != 1 || rep.Reassignments != 1 {
		t.Fatalf("lease_expiries=%d reassignments=%d, want 1/1", rep.LeaseExpiries, rep.Reassignments)
	}
	// The only live node has free capacity again, so the job re-placed
	// immediately: a fresh pull re-delivers it with a consumed attempt.
	got, _ := d.Get(st.ID)
	if got.State != jobs.StateRunning || got.Attempts != 2 {
		t.Fatalf("after recycle: state=%s attempts=%d, want running/2", got.State, got.Attempts)
	}
	pr, err = d.Pull(PullRequest{Node: "a", Max: 1})
	if err != nil || len(pr.Assignments) != 1 || pr.Assignments[0].ID != st.ID {
		t.Fatalf("recycled pull: %v, %+v", err, pr.Assignments)
	}
	if _, err := d.Complete(doneReport(t, "a", pr.Assignments[0])); err != nil {
		t.Fatalf("complete: %v", err)
	}
	if got, _ = d.Get(st.ID); got.State != jobs.StateDone {
		t.Fatalf("state = %s, want done", got.State)
	}
}

// TestDuplicateAndDivergentCompletion: a second done report with identical
// bytes is a benign duplicate; one with different bytes is the
// duplicated-side-effect signal — first artifact kept, divergence counted.
func TestDuplicateAndDivergentCompletion(t *testing.T) {
	clk := fault.NewManual(time.Unix(0, 0))
	d, store := manualDispatcher(t, clk, DispatcherOptions{LeaseTTL: time.Hour, NodeTTL: time.Hour})
	mustRegister(t, d, "a", 1)
	mustRegister(t, d, "b", 1)
	st := submitSynthetic(t, d, 1)
	pr, _ := d.Pull(PullRequest{Node: "a", Max: 1})
	first := doneReport(t, "a", pr.Assignments[0])
	if _, err := d.Complete(first); err != nil {
		t.Fatal(err)
	}

	dup := first
	dup.Node = "b"
	resp, err := d.Complete(dup)
	if err != nil || resp.Outcome != OutcomeDuplicate {
		t.Fatalf("identical re-report: %v, outcome %q, want duplicate", err, resp.Outcome)
	}

	div := first
	div.Node = "b"
	div.Result = []byte(`{"i":1,"work":1000,"digest":666}`)
	div.ResultSum = jobs.Sum(div.Result) // self-consistent, but different bytes
	resp, err = d.Complete(div)
	if err != nil || resp.Outcome != OutcomeDivergent {
		t.Fatalf("divergent re-report: %v, outcome %q, want divergent", err, resp.Outcome)
	}
	// First writer wins: the recorded artifact did not change.
	raw, err := store.GetResult(st.ID)
	if err != nil || jobs.Sum(raw) != first.ResultSum {
		t.Fatalf("recorded artifact changed after divergence: %v", err)
	}
	if rep := d.Report(); rep.Divergent != 1 {
		t.Fatalf("divergent counter = %d, want 1", rep.Divergent)
	}
}

// TestNodeDeathReassignment: a node silent past the node TTL is declared
// dead; its whole in-flight set re-queues and its registry entry drops.
func TestNodeDeathReassignment(t *testing.T) {
	clk := fault.NewManual(time.Unix(0, 0))
	d, _ := manualDispatcher(t, clk, DispatcherOptions{
		LeaseTTL: time.Hour,
		NodeTTL:  10 * time.Second,
	})
	mustRegister(t, d, "doomed", 2)
	a := submitSynthetic(t, d, 1)
	b := submitSynthetic(t, d, 2)
	if _, err := d.Pull(PullRequest{Node: "doomed", Max: 2}); err != nil {
		t.Fatal(err)
	}
	clk.Advance(11 * time.Second)
	d.Sweep()
	rep := d.Report()
	if rep.NodeDeaths != 1 || len(rep.Nodes) != 0 {
		t.Fatalf("node_deaths=%d live=%d, want 1/0", rep.NodeDeaths, len(rep.Nodes))
	}
	for _, st := range []jobs.Status{a, b} {
		got, _ := d.Get(st.ID)
		if got.State != jobs.StateQueued {
			t.Fatalf("job %s state = %s, want queued", st.ID, got.State)
		}
	}
	// The dead node's protocol calls now demand re-registration.
	if _, err := d.Heartbeat(HeartbeatRequest{Node: "doomed"}); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("heartbeat after death: %v, want ErrUnknownNode", err)
	}
}

// TestRegisterReconcile: a restarting node's rebuilt state is reconciled —
// still-assigned work is adopted (Keep), terminal work dropped, and
// finished-but-unreplicated artifacts requested (Want) — instead of re-run.
func TestRegisterReconcile(t *testing.T) {
	clk := fault.NewManual(time.Unix(0, 0))
	d, _ := manualDispatcher(t, clk, DispatcherOptions{LeaseTTL: time.Hour, NodeTTL: time.Hour})
	mustRegister(t, d, "w", 3)
	running := submitSynthetic(t, d, 1)
	finished := submitSynthetic(t, d, 2)
	pr, err := d.Pull(PullRequest{Node: "w", Max: 3})
	if err != nil || len(pr.Assignments) != 2 {
		t.Fatalf("pull: %v, %d assignments", err, len(pr.Assignments))
	}

	// The node "restarts": it rebuilt `running` as in-progress, holds
	// `finished` terminal locally (artifact never acked), and reports one
	// id the dispatcher never issued.
	resp, err := d.Register(RegisterRequest{
		Node: "w", Capacity: 3,
		InProgress: []string{running.ID, "bogus000"},
		Finished:   []string{finished.ID},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Keep) != 1 || resp.Keep[0] != running.ID {
		t.Fatalf("keep = %v, want [%s]", resp.Keep, running.ID)
	}
	if len(resp.Drop) != 1 || resp.Drop[0] != "bogus000" {
		t.Fatalf("drop = %v, want [bogus000]", resp.Drop)
	}
	if len(resp.Want) != 1 || resp.Want[0] != finished.ID {
		t.Fatalf("want = %v, want [%s]", resp.Want, finished.ID)
	}
	rep := d.Report()
	if rep.QueueDepth != 0 {
		t.Fatalf("queue depth = %d after reconcile, want 0 (nothing re-queued)", rep.QueueDepth)
	}
	// Neither adopted job went back through the outbox: a fresh pull
	// delivers nothing (no re-run).
	pr, err = d.Pull(PullRequest{Node: "w", Max: 3})
	if err != nil || len(pr.Assignments) != 0 {
		t.Fatalf("post-reconcile pull: %v, %d assignments, want 0", err, len(pr.Assignments))
	}
}

// TestCompleteIntegrity: an artifact whose bytes do not hash to the
// reported checksum is refused, counted, and the job re-queued for a fresh
// attempt; the dispatcher store never records the torn artifact.
func TestCompleteIntegrity(t *testing.T) {
	clk := fault.NewManual(time.Unix(0, 0))
	d, store := manualDispatcher(t, clk, DispatcherOptions{LeaseTTL: time.Hour, NodeTTL: time.Hour})
	mustRegister(t, d, "w", 1)
	st := submitSynthetic(t, d, 1)
	pr, _ := d.Pull(PullRequest{Node: "w", Max: 1})
	req := doneReport(t, "w", pr.Assignments[0])
	req.Result = []byte(`{"torn":true}`) // bytes no longer match ResultSum

	_, err := d.Complete(req)
	if !errors.Is(err, ErrIntegrity) {
		t.Fatalf("complete with torn artifact: %v, want ErrIntegrity", err)
	}
	// The job went back through the queue and re-placed on the still-live
	// node for a fresh attempt.
	got, _ := d.Get(st.ID)
	if got.State != jobs.StateRunning || got.Attempts != 2 {
		t.Fatalf("state=%s attempts=%d, want running/2 (fresh attempt)", got.State, got.Attempts)
	}
	if _, err := store.GetResult(st.ID); err == nil {
		t.Fatal("torn artifact was replicated into the dispatcher store")
	}
	if rep := d.Report(); rep.IntegrityRejects != 1 {
		t.Fatalf("integrity_rejects = %d, want 1", rep.IntegrityRejects)
	}
}

// TestErrorRoundTripByValue: a runner failure on a worker node crosses the
// wire by value and re-surfaces verbatim on the dispatcher's v1 API once
// the assignment budget is exhausted.
func TestErrorRoundTripByValue(t *testing.T) {
	clk := fault.NewManual(time.Unix(0, 0))
	d, _ := manualDispatcher(t, clk, DispatcherOptions{
		LeaseTTL: time.Hour, NodeTTL: time.Hour, MaxAttempts: 1,
	})
	mustRegister(t, d, "w", 1)
	st := submitSynthetic(t, d, 1)
	pr, _ := d.Pull(PullRequest{Node: "w", Max: 1})
	msg := "synthetic: divide by cucumber"
	resp, err := d.Complete(CompleteRequest{
		Node: "w", ID: pr.Assignments[0].ID, State: jobs.StateFailed, Error: msg,
	})
	if err != nil || resp.Outcome != OutcomeRecorded {
		t.Fatalf("complete failed-report: %v, outcome %q", err, resp.Outcome)
	}
	got, _ := d.Get(st.ID)
	if got.State != jobs.StateFailed || got.Error != msg {
		t.Fatalf("status = %s %q, want failed with the verbatim runner error", got.State, got.Error)
	}
}

// TestDispatcherRecover: a restarted dispatcher rebuilds from its store —
// done jobs stay done (artifact verified), in-flight ones re-queue.
func TestDispatcherRecover(t *testing.T) {
	dir := t.TempDir()
	store, err := jobs.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	clk := fault.NewManual(time.Unix(0, 0))
	d := NewDispatcher(store, DispatcherOptions{Clock: clk, LeaseTTL: time.Hour, NodeTTL: time.Hour})
	mustRegister(t, d, "w", 2)
	doneJob := submitSynthetic(t, d, 1)
	runningJob := submitSynthetic(t, d, 2)
	pr, _ := d.Pull(PullRequest{Node: "w", Max: 2})
	for _, a := range pr.Assignments {
		if a.ID == doneJob.ID {
			if _, err := d.Complete(doneReport(t, "w", a)); err != nil {
				t.Fatal(err)
			}
		}
	}
	d.Close() // dispatcher crash: volatile fleet state gone, store persists

	store2, err := jobs.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	d2 := NewDispatcher(store2, DispatcherOptions{Clock: clk, LeaseTTL: time.Hour, NodeTTL: time.Hour})
	t.Cleanup(d2.Close)
	requeued, err := d2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if requeued != 1 {
		t.Fatalf("recover requeued %d, want 1", requeued)
	}
	if got, _ := d2.Get(doneJob.ID); got.State != jobs.StateDone {
		t.Fatalf("done job after recover: %s, want done", got.State)
	}
	if got, _ := d2.Get(runningJob.ID); got.State != jobs.StateQueued {
		t.Fatalf("in-flight job after recover: %s, want queued", got.State)
	}
	// Submitting the done spec again is a pure cache hit.
	params, _ := json.Marshal(jobs.SyntheticParams{I: 1})
	_, outcome, err := d2.Submit(jobs.Spec{Kind: jobs.KindSynthetic, Params: params})
	if err != nil || outcome != jobs.SubmitCached {
		t.Fatalf("resubmit done spec: %v, outcome %v, want cached", err, outcome)
	}
}

// TestFleetEndToEnd: a real 1-dispatcher/2-worker fleet over the in-process
// router. A jobs.Client cannot tell the fleet from a single padserver: it
// submits on /v1, waits, and reads back verified artifacts.
func TestFleetEndToEnd(t *testing.T) {
	dir := t.TempDir()
	d, store, err := chaosDispatcher(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	router := NewRouter()
	router.Swap(Handler(d))

	var workers []*Worker
	for i := 0; i < 2; i++ {
		w, err := chaosWorker(dir, i, router, nil, int64(i), jobs.RetryPolicy{}, 2)
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		workers = append(workers, w)
	}

	cl := jobs.NewClient("http://dispatcher")
	cl.HTTP = router.Client()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second) // nosleep:allow test deadline
	defer cancel()

	var ids []string
	for i := 0; i < 8; i++ {
		params, _ := json.Marshal(jobs.SyntheticParams{I: i})
		resp, err := cl.Submit(ctx, jobs.Spec{Kind: jobs.KindSynthetic, Params: params})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, resp.ID)
	}
	results, err := cl.WaitMany(ctx, ids, 5*time.Millisecond)
	if err != nil {
		t.Fatalf("wait many: %v", err)
	}
	for i, id := range ids {
		r := results[id]
		if r == nil || r.State != jobs.StateDone {
			t.Fatalf("job %d (%s): %+v, want done", i, id, r)
		}
		// The artifact served over /v1 decodes to the deterministic value a
		// local execution produces.
		var got jobs.SyntheticResult
		if err := json.Unmarshal(r.Result, &got); err != nil {
			t.Fatalf("job %d: decode artifact: %v", i, err)
		}
		params, _ := json.Marshal(jobs.SyntheticParams{I: i})
		want, err := jobs.RunSynthetic(ctx, params)
		if err != nil {
			t.Fatal(err)
		}
		if got.Digest != want.(*jobs.SyntheticResult).Digest {
			t.Fatalf("job %d: digest %d differs from local execution", i, got.Digest)
		}
	}
	ir, err := store.VerifyArtifacts()
	if err != nil || !ir.OK() {
		t.Fatalf("dispatcher integrity: %v %+v", err, ir)
	}
	rep := d.Report()
	if rep.Replications != 8 || rep.Inflight != 0 || rep.QueueDepth != 0 {
		t.Fatalf("fleet report: %+v, want 8 replications and a drained fleet", rep)
	}
	if len(rep.Nodes) != 2 {
		t.Fatalf("live nodes = %d, want 2", len(rep.Nodes))
	}
	// Both nodes should have shared the work.
	for _, n := range rep.Nodes {
		if n.Completions == 0 {
			t.Errorf("node %s completed nothing — placement never spread", n.Node)
		}
	}
	// The Prometheus surface carries the fleet family.
	var sb strings.Builder
	if err := d.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"pad_fleet_nodes_alive", "pad_fleet_replications_total", "pad_fleet_placement_seconds"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("metrics exposition missing %s", want)
		}
	}
}

// TestFleetCancelPropagation: cancelling through the v1 API reaches the
// executing node via heartbeat control traffic and lands terminal.
func TestFleetCancelPropagation(t *testing.T) {
	clk := fault.NewManual(time.Unix(0, 0))
	d, _ := manualDispatcher(t, clk, DispatcherOptions{LeaseTTL: time.Hour, NodeTTL: time.Hour})
	mustRegister(t, d, "w", 1)
	st := submitSynthetic(t, d, 1)
	pr, _ := d.Pull(PullRequest{Node: "w", Max: 1})
	if err := d.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	hb, err := d.Heartbeat(HeartbeatRequest{Node: "w", InProgress: []string{st.ID}})
	if err != nil || len(hb.Cancel) != 1 || hb.Cancel[0] != st.ID {
		t.Fatalf("heartbeat cancel list: %v %+v", err, hb)
	}
	resp, err := d.Complete(CompleteRequest{
		Node: "w", ID: pr.Assignments[0].ID, State: jobs.StateCancelled, Error: "cancelled",
	})
	if err != nil || resp.Outcome != OutcomeRecorded {
		t.Fatalf("cancelled complete: %v %+v", err, resp)
	}
	if got, _ := d.Get(st.ID); got.State != jobs.StateCancelled {
		t.Fatalf("state = %s, want cancelled", got.State)
	}
}

// TestHandlerEnvelope: fabric-protocol errors use the unified envelope with
// fabric codes, at the right statuses.
func TestHandlerEnvelope(t *testing.T) {
	clk := fault.NewManual(time.Unix(0, 0))
	d, _ := manualDispatcher(t, clk, DispatcherOptions{LeaseTTL: time.Hour, NodeTTL: time.Hour})
	router := NewRouter()
	router.Swap(Handler(d))
	fc := NewClient("http://dispatcher")
	fc.HTTP = router.Client()
	ctx := context.Background() // nosleep:allow test root

	_, err := fc.Heartbeat(ctx, HeartbeatRequest{Node: "ghost"})
	if !IsUnknownNode(err) {
		t.Fatalf("heartbeat from unregistered node: %v, want unknown_node envelope", err)
	}
	var apiErr *jobs.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 404 || apiErr.Code != CodeUnknownNode {
		t.Fatalf("envelope = %+v, want 404 unknown_node", apiErr)
	}

	if _, err := fc.Register(ctx, RegisterRequest{Node: "w", Capacity: 1}); err != nil {
		t.Fatal(err)
	}
	st := submitSynthetic(t, d, 1)
	pr, _ := d.Pull(PullRequest{Node: "w", Max: 1})
	_, err = fc.Complete(ctx, CompleteRequest{
		Node: "w", ID: pr.Assignments[0].ID, State: jobs.StateDone,
		Result: []byte(`{"x":1}`), ResultSum: "deadbeef",
	})
	if !IsIntegrityReject(err) {
		t.Fatalf("torn complete: %v, want integrity_mismatch envelope", err)
	}
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 409 {
		t.Fatalf("envelope status = %+v, want 409", apiErr)
	}
	if got, _ := d.Get(st.ID); got.State == jobs.StateDone {
		t.Fatalf("state after reject = %s; the torn artifact must not land the job done", got.State)
	}

	// The fleet report is served over the same mux.
	rep, err := fc.Nodes(ctx)
	if err != nil || len(rep.Nodes) != 1 {
		t.Fatalf("nodes report: %v %+v", err, rep)
	}
	if rep.IntegrityRejects != 1 {
		t.Fatalf("report integrity_rejects = %d, want 1", rep.IntegrityRejects)
	}
}

// TestSubmitValidation: unknown kinds and saturation shed with the same
// typed errors a single-node queue uses, so the shared HTTP layer maps them
// identically.
func TestSubmitValidation(t *testing.T) {
	clk := fault.NewManual(time.Unix(0, 0))
	d, _ := manualDispatcher(t, clk, DispatcherOptions{
		LeaseTTL: time.Hour, NodeTTL: time.Hour, MaxQueued: 2,
	})
	if _, _, err := d.Submit(jobs.Spec{Kind: "no-such-kind", Params: json.RawMessage(`{}`)}); !errors.Is(err, jobs.ErrUnknownKind) {
		t.Fatalf("unknown kind: %v", err)
	}
	// No nodes registered: jobs queue up to MaxQueued, then shed.
	for i := 0; i < 2; i++ {
		submitSynthetic(t, d, i)
	}
	params, _ := json.Marshal(jobs.SyntheticParams{I: 99})
	if _, _, err := d.Submit(jobs.Spec{Kind: jobs.KindSynthetic, Params: params}); !errors.Is(err, jobs.ErrSaturated) {
		t.Fatalf("over MaxQueued: %v, want ErrSaturated", err)
	}
	h := d.Health()
	if h.OK {
		t.Fatal("health OK with a saturated, node-less fleet")
	}
	joined := fmt.Sprint(h.Degraded)
	for _, want := range []string{"saturated", "no_nodes"} {
		if !strings.Contains(joined, want) {
			t.Errorf("degraded reasons %v missing %q", h.Degraded, want)
		}
	}
}
