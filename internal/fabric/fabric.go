// Package fabric is the distributed experiment fabric: it promotes the
// single-node job queue (internal/jobs) into a horizontally scalable fleet
// of a dispatcher and worker nodes, simq-style.
//
// The Dispatcher accepts submissions on the existing v1 jobs API (it
// implements jobs.Service, so a jobs.Client cannot tell a dispatcher from a
// single padserver), maintains a node registry with per-node capacity
// booking, and places queued jobs on the least-loaded live node. Workers
// are pull-based agents (cmd/padworker) wrapping a local jobs.Queue: they
// register, heartbeat on the injectable fault.Clock, pull assignments,
// execute them on the local pool, and report completions with the result
// artifact attached. The dispatcher verifies each artifact against the
// sha256 content address the worker recorded (Status.ResultSum) before
// replicating it into its own store, so a fleet's results are as
// integrity-checked as a single node's.
//
// Failure model. Every assignment carries a lease, renewed by heartbeats.
// A worker that stops heartbeating past the node TTL is declared dead and
// its in-flight jobs are re-queued for reassignment; a single expired lease
// does the same for one job. A restarting worker rebuilds its in-progress
// set from its local store (the simq RebuildSimulatorList pattern) and
// re-registers with it, so the dispatcher reconciles — adopting still-running
// work and requesting artifacts it never received — rather than re-running.
// Reassignment is safe because job kinds are deterministic functions of
// their content-addressed specs: a duplicated execution produces a
// byte-identical artifact, the dispatcher keeps the first and counts any
// divergence, so "no duplicate side effects" is checkable as "no job's
// recorded checksum ever changes". FleetChaos asserts exactly that under
// seeded node kills, restarts and a dispatcher crash.
//
// Wire protocol. Workers speak JSON over /fabric/v1/ (register, heartbeat,
// pull, complete, nodes), reusing the v1 unified error envelope, so errors
// round-trip by value across the fleet exactly as they do to API clients.
package fabric

import (
	"errors"

	"priceadaptive/internal/jobs"
)

// Fabric-specific error-envelope codes (the jobs.Code* values are reused
// where the condition is the same).
const (
	// CodeUnknownNode tells a worker the dispatcher does not know it —
	// typically because the dispatcher restarted or expired the node — and
	// it must re-register before pulling or acking.
	CodeUnknownNode = "unknown_node"
	// CodeIntegrity rejects a completion whose artifact bytes do not hash
	// to the checksum the worker recorded at the done transition.
	CodeIntegrity = "integrity_mismatch"
)

// Errors the fabric API maps to envelope codes.
var (
	// ErrUnknownNode is returned to unregistered nodes; see CodeUnknownNode.
	ErrUnknownNode = errors.New("fabric: unknown node")
	// ErrIntegrity is returned when a completion's artifact fails its
	// checksum; the job is re-queued for a fresh attempt.
	ErrIntegrity = errors.New("fabric: artifact checksum mismatch")
)

// RegisterRequest announces a worker node to the dispatcher. A restarting
// worker sends its rebuilt local state so the dispatcher can reconcile
// instead of re-running: InProgress is every job its local store holds as
// queued or running, Finished every job already terminal locally.
type RegisterRequest struct {
	// Node is the worker's stable name (re-registration under the same name
	// replaces the previous registration).
	Node string `json:"node"`
	// Capacity is how many concurrent assignments the node can execute; the
	// dispatcher books against it and never over-assigns.
	Capacity int `json:"capacity"`
	// InProgress is the node's rebuilt in-progress set.
	InProgress []string `json:"in_progress,omitempty"`
	// Finished lists jobs terminal in the node's local store, so the
	// dispatcher can ask for any artifact it never received (Want).
	Finished []string `json:"finished,omitempty"`
}

// RegisterResponse is the dispatcher's reconcile verdict plus fleet timing.
type RegisterResponse struct {
	// LeaseSec is the assignment lease; a job unheartbeated this long is
	// re-queued. HeartbeatSec is how often the node should heartbeat.
	LeaseSec     float64 `json:"lease_sec"`
	HeartbeatSec float64 `json:"heartbeat_sec"`
	// Keep confirms in-progress jobs: the node holds their (renewed) leases
	// and should run them to completion.
	Keep []string `json:"keep,omitempty"`
	// Drop lists jobs the node should abandon: re-assigned elsewhere,
	// cancelled, or unknown to the dispatcher.
	Drop []string `json:"drop,omitempty"`
	// Want lists finished jobs whose artifacts the dispatcher lacks; the
	// node should report each with a Complete call (no re-run needed).
	Want []string `json:"want,omitempty"`
}

// HeartbeatRequest renews the node's liveness and the leases of every job
// it reports in progress.
type HeartbeatRequest struct {
	Node string `json:"node"`
	// InProgress is the node's current in-progress set; only reported jobs
	// have their leases renewed.
	InProgress []string `json:"in_progress,omitempty"`
	// Free is the node's current spare capacity (informational; booking is
	// dispatcher-side).
	Free int `json:"free"`
}

// HeartbeatResponse carries dispatcher-to-node control traffic.
type HeartbeatResponse struct {
	// Cancel lists assignments the node should cancel locally (a client
	// cancelled the job); the node reports the cancellation via Complete.
	Cancel []string `json:"cancel,omitempty"`
	// Drop lists assignments the node no longer holds (lease expired and
	// re-assigned, or job resolved elsewhere); abandon without reporting.
	Drop []string `json:"drop,omitempty"`
}

// PullRequest asks for up to Max fresh assignments.
type PullRequest struct {
	Node string `json:"node"`
	Max  int    `json:"max"`
}

// Assignment is one unit of placed work.
type Assignment struct {
	ID   string    `json:"id"`
	Spec jobs.Spec `json:"spec"`
}

// PullResponse delivers the node's pending assignments.
type PullResponse struct {
	Assignments []Assignment `json:"assignments,omitempty"`
}

// CompleteRequest reports a terminal local outcome, carrying the artifact
// for replication. Errors round-trip by value: Error is the runner's
// failure message, re-surfaced verbatim by the dispatcher's v1 API.
type CompleteRequest struct {
	Node  string     `json:"node"`
	ID    string     `json:"id"`
	State jobs.State `json:"state"`
	// Error is the failure (or cancellation) message when State != done.
	Error string `json:"error,omitempty"`
	// Attempts and DurationNS mirror the worker-local status.
	Attempts   int   `json:"attempts,omitempty"`
	DurationNS int64 `json:"duration_ns,omitempty"`
	// Result is the artifact bytes and ResultSum their sha256 content
	// address as recorded by the worker; the dispatcher re-hashes Result
	// and refuses the completion on mismatch. It travels base64-encoded
	// ([]byte, not json.RawMessage) deliberately: checksums are over exact
	// bytes, and embedding raw JSON would let re-encoding (compaction,
	// re-indentation) silently change them in flight.
	Result    []byte `json:"result,omitempty"`
	ResultSum string `json:"result_sum,omitempty"`
}

// Completion outcomes.
const (
	// OutcomeRecorded: the report landed and the job is now terminal.
	OutcomeRecorded = "recorded"
	// OutcomeDuplicate: the job was already done with an identical
	// artifact; the duplicate execution was benign (idempotent by
	// construction) and nothing changed.
	OutcomeDuplicate = "duplicate"
	// OutcomeDivergent: the job was already done with a DIFFERENT artifact
	// checksum — a duplicated side effect. The first artifact is kept and
	// the divergence counted; FleetChaos fails on any occurrence.
	OutcomeDivergent = "divergent"
	// OutcomeStale: the report no longer matters (job re-assigned away,
	// cancelled, or this node's claim lapsed); the node should forget it.
	OutcomeStale = "stale"
)

// CompleteResponse acknowledges a completion report.
type CompleteResponse struct {
	Outcome string `json:"outcome"`
}

// NodeInfo is one registry entry of the fleet report.
type NodeInfo struct {
	Node     string `json:"node"`
	Capacity int    `json:"capacity"`
	// Inflight is the node's booked assignments, Outbox the subset placed
	// but not yet pulled.
	Inflight int `json:"inflight"`
	Outbox   int `json:"outbox"`
	// LastSeenMS is milliseconds since the node's last heartbeat (on the
	// dispatcher's clock).
	LastSeenMS int64 `json:"last_seen_ms"`
	// Completions counts Complete reports accepted from this node.
	Completions int64 `json:"completions"`
}

// FleetReport is the dispatcher's aggregate view, served at
// GET /fabric/v1/nodes and uploaded by the CI fabric-smoke job.
type FleetReport struct {
	Nodes []NodeInfo `json:"nodes"`
	// QueueDepth is unplaced jobs; Inflight is fleet-wide booked work.
	QueueDepth int `json:"queue_depth"`
	Inflight   int `json:"inflight"`
	// Capacity is the fleet-wide booked capacity of live nodes.
	Capacity int `json:"capacity"`
	// Counters since dispatcher start.
	Assignments      int64 `json:"assignments"`
	Reassignments    int64 `json:"reassignments"`
	LeaseExpiries    int64 `json:"lease_expiries"`
	NodeDeaths       int64 `json:"node_deaths"`
	IntegrityRejects int64 `json:"integrity_rejects"`
	Divergent        int64 `json:"divergent"`
	Completions      int64 `json:"completions"`
	Replications     int64 `json:"replications"`
}
