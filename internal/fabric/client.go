package fabric

import (
	"context"
	"errors"
	"net/http"

	"priceadaptive/internal/jobs"
)

// Client is the typed worker-side client for the /fabric/v1 node protocol.
// It rides on jobs.Client.Do, so envelope decoding, *APIError typing and
// transport configuration are shared with the v1 jobs client.
type Client struct {
	*jobs.Client
}

// NewClient returns a node-protocol client for the dispatcher at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{Client: jobs.NewClient(baseURL)}
}

// IsUnknownNode reports whether err is the dispatcher telling the node to
// re-register (404 unknown_node).
func IsUnknownNode(err error) bool {
	if apiErr, ok := asAPIError(err); ok {
		return apiErr.Code == CodeUnknownNode
	}
	return false
}

// IsIntegrityReject reports whether err is the dispatcher refusing a
// completion's artifact (409 integrity_mismatch). The worker should drop its
// claim; the dispatcher already re-queued the job.
func IsIntegrityReject(err error) bool {
	if apiErr, ok := asAPIError(err); ok {
		return apiErr.Code == CodeIntegrity
	}
	return false
}

func asAPIError(err error) (*jobs.APIError, bool) {
	var apiErr *jobs.APIError
	ok := errors.As(err, &apiErr)
	return apiErr, ok
}

// Register announces the node (with its rebuilt local state) and returns
// the reconcile verdict.
func (c *Client) Register(ctx context.Context, req RegisterRequest) (RegisterResponse, error) {
	var out RegisterResponse
	_, err := c.Do(ctx, http.MethodPost, "/fabric/v1/register", req, &out, http.StatusOK)
	return out, err
}

// Heartbeat renews liveness and leases, returning control traffic.
func (c *Client) Heartbeat(ctx context.Context, req HeartbeatRequest) (HeartbeatResponse, error) {
	var out HeartbeatResponse
	_, err := c.Do(ctx, http.MethodPost, "/fabric/v1/heartbeat", req, &out, http.StatusOK)
	return out, err
}

// Pull fetches up to req.Max pending assignments.
func (c *Client) Pull(ctx context.Context, req PullRequest) (PullResponse, error) {
	var out PullResponse
	_, err := c.Do(ctx, http.MethodPost, "/fabric/v1/pull", req, &out, http.StatusOK)
	return out, err
}

// Complete reports a terminal local outcome with the artifact attached.
func (c *Client) Complete(ctx context.Context, req CompleteRequest) (CompleteResponse, error) {
	var out CompleteResponse
	_, err := c.Do(ctx, http.MethodPost, "/fabric/v1/complete", req, &out, http.StatusOK)
	return out, err
}

// Nodes fetches the dispatcher's fleet report.
func (c *Client) Nodes(ctx context.Context) (FleetReport, error) {
	var out FleetReport
	_, err := c.Do(ctx, http.MethodGet, "/fabric/v1/nodes", nil, &out, http.StatusOK)
	return out, err
}
