package fabric

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"priceadaptive/internal/fault"
	"priceadaptive/internal/jobs"
	"priceadaptive/internal/obsv"
)

// DispatcherOptions configures a Dispatcher. The zero value gets sane
// production defaults; chaos and unit tests shrink every interval.
type DispatcherOptions struct {
	// LeaseTTL is how long an assignment may go unheartbeated before it is
	// re-queued for reassignment (default 15s).
	LeaseTTL time.Duration
	// NodeTTL is how long a node may go silent before it is declared dead
	// and its whole in-flight set re-queued (default 10s).
	NodeTTL time.Duration
	// Heartbeat is the cadence advertised to workers (default 3s).
	Heartbeat time.Duration
	// Sweep is the lease-expiry scan interval (default 1s).
	Sweep time.Duration
	// MaxQueued bounds unplaced jobs; beyond it Submit sheds with
	// jobs.ErrSaturated. 0 means unbounded.
	MaxQueued int
	// MaxAttempts is the fleet-wide assignment budget per job life: a job
	// whose failure (or shed) count reaches it lands terminal failed
	// instead of re-queueing (default 3).
	MaxAttempts int
	// Kinds is the admitted job-kind set (default jobs.BuiltinKinds()).
	// The dispatcher holds no runners; workers must register these kinds.
	Kinds []string
	// Clock drives leases, heartbeats and the sweeper; nil means the wall
	// clock. Tests substitute fault.Manual to step lease expiry by hand.
	Clock fault.Clock
	// Metrics is the registry the pad_fleet_* instruments land on; nil
	// means a private registry.
	Metrics *obsv.Registry
}

func (o DispatcherOptions) withDefaults() DispatcherOptions {
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 15 * time.Second
	}
	if o.NodeTTL <= 0 {
		o.NodeTTL = 10 * time.Second
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = 3 * time.Second
	}
	if o.Sweep <= 0 {
		o.Sweep = time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.Kinds == nil {
		o.Kinds = jobs.BuiltinKinds()
	}
	if o.Clock == nil {
		o.Clock = fault.Wall{}
	}
	return o
}

// fjob is the dispatcher's in-memory view of one fleet job.
type fjob struct {
	spec   jobs.Spec
	status jobs.Status
	// result caches the replicated artifact once done.
	result json.RawMessage
	// node is the current assignment ("" while unplaced); delivered marks
	// that the node pulled it; lease is the assignment's expiry on the
	// dispatcher clock.
	node      string    // guarded by Dispatcher.mu
	delivered bool      // guarded by Dispatcher.mu
	lease     time.Time // guarded by Dispatcher.mu
	// acceptedAt (dispatcher clock) feeds the placement-latency histogram.
	acceptedAt      time.Time // guarded by Dispatcher.mu
	cancelRequested bool      // guarded by Dispatcher.mu
	// done closes at the terminal transition (replaced on resubmission).
	done chan struct{}
}

// dnode is one registry entry: a live worker node and its bookings.
type dnode struct {
	name     string
	capacity int
	// inflight is the booked assignment set; outbox the subset placed but
	// not yet pulled.
	inflight map[string]bool // guarded by Dispatcher.mu
	outbox   []string        // guarded by Dispatcher.mu
	lastSeen time.Time       // guarded by Dispatcher.mu
	// completions counts accepted Complete reports, for the fleet report.
	completions int64 // guarded by Dispatcher.mu
}

// padvet:holds Dispatcher.mu
func (n *dnode) free() int { return n.capacity - len(n.inflight) }

// load is the booking ratio placement minimizes.
// padvet:holds Dispatcher.mu
func (n *dnode) load() float64 { return float64(len(n.inflight)) / float64(n.capacity) }

// Dispatcher shards jobs across registered worker nodes. It implements
// jobs.Service, so jobs.NewHandlerFor serves it over the exact v1 API a
// single-node padserver speaks; the /fabric/v1 node protocol rides on the
// same mux (see Handler).
type Dispatcher struct {
	store *jobs.Store
	opts  DispatcherOptions
	clock fault.Clock
	m     *fleetMetrics

	sweepCtx    context.Context // padvet:allow ctx-field sweeper lifetime root, cancelled in Close
	sweepCancel context.CancelFunc
	wg          sync.WaitGroup

	mu      sync.Mutex
	kinds   map[string]bool   // guarded by mu
	jobs    map[string]*fjob  // guarded by mu
	queue   []string          // guarded by mu (accepted, unplaced, FIFO)
	nodes   map[string]*dnode // guarded by mu
	started bool              // guarded by mu
	closed  bool              // guarded by mu
	// terminal tallies for the MetricsSnapshot view.
	doneN, failedN, cancelledN int64 // guarded by mu
}

// NewDispatcher creates a dispatcher over store. Call Recover, then Start.
func NewDispatcher(store *jobs.Store, opts DispatcherOptions) *Dispatcher {
	opts = opts.withDefaults()
	ctx, cancel := context.WithCancel(context.Background()) // nosleep:allow sweeper-lifetime root, cancelled in Close
	d := &Dispatcher{
		store:       store,
		opts:        opts,
		clock:       opts.Clock,
		m:           newFleetMetrics(opts.Metrics),
		sweepCtx:    ctx,
		sweepCancel: cancel,
		kinds:       make(map[string]bool, len(opts.Kinds)),
		jobs:        make(map[string]*fjob),
		nodes:       make(map[string]*dnode),
	}
	for _, k := range opts.Kinds {
		d.kinds[k] = true // padvet:allow lockguard construction: d is not shared yet
	}
	d.m.registerGauges(d)
	return d
}

// Observability returns the registry backing the pad_fleet_* instruments.
func (d *Dispatcher) Observability() *obsv.Registry { return d.m.reg }

// PlacementLatencies returns the raw accept-to-place latencies (seconds)
// observed so far; the load-generator bench summarizes them.
func (d *Dispatcher) PlacementLatencies() []float64 { return d.m.placementLatencies() }

// Recover rescans the dispatcher store after a restart: done jobs with an
// intact replicated artifact stay done, done jobs whose artifact is missing
// or fails its checksum are re-queued, and jobs that were queued or assigned
// when the previous dispatcher died are re-queued — to be reconciled (not
// re-run) when their worker re-registers with its rebuilt in-progress set.
func (d *Dispatcher) Recover() (requeued int, err error) {
	entries, orphans, err := d.store.Scan()
	if err != nil {
		return 0, fmt.Errorf("fabric: recover: %w", err)
	}
	d.store.Reconcile(orphans)
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, e := range entries {
		if _, ok := d.jobs[e.ID]; ok {
			continue
		}
		j := &fjob{spec: e.Spec, status: e.Status, acceptedAt: d.clock.Now(), done: make(chan struct{})}
		resultBad := false
		if e.Status.State == jobs.StateDone {
			raw, rerr := d.store.GetResult(e.ID)
			switch {
			case rerr != nil:
				resultBad = true
			case e.Status.ResultSum != "" && jobs.Sum(raw) != e.Status.ResultSum:
				resultBad = true
			}
		}
		switch {
		case e.Status.State == jobs.StateQueued, e.Status.State == jobs.StateRunning, resultBad:
			j.status.State = jobs.StateQueued
			j.node = ""
			if err := d.store.PutStatus(e.ID, j.status); err != nil {
				continue // left on disk; the next Recover retries it
			}
			d.queue = append(d.queue, e.ID)
			requeued++
		default:
			close(j.done)
		}
		d.jobs[e.ID] = j
	}
	return requeued, nil
}

// Start spawns the lease sweeper.
func (d *Dispatcher) Start() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.started || d.closed {
		return
	}
	d.started = true
	d.wg.Add(1)
	go d.sweeper()
}

// Close stops the dispatcher. In-memory fleet state (assignments, node
// registry) is deliberately volatile: a restarted dispatcher recovers its
// job set from the store and relearns the fleet as workers re-register, so
// Close doubles as the chaos harness's dispatcher-crash model.
func (d *Dispatcher) Close() {
	d.mu.Lock()
	d.closed = true
	d.mu.Unlock()
	d.sweepCancel()
	d.wg.Wait()
}

func (d *Dispatcher) sweeper() {
	defer d.wg.Done()
	for {
		if err := d.clock.Sleep(d.sweepCtx, d.opts.Sweep); err != nil {
			return
		}
		d.Sweep()
	}
}

// Sweep expires dead nodes and stale leases, re-queueing their jobs, then
// re-places the queue. The background sweeper calls it on every tick;
// manual-clock tests call it directly after advancing time.
func (d *Dispatcher) Sweep() {
	now := d.clock.Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	for name, n := range d.nodes {
		if now.Sub(n.lastSeen) <= d.opts.NodeTTL {
			continue
		}
		// Node death: every booking comes back for reassignment.
		d.m.nodeDeaths.Inc()
		for id := range n.inflight {
			d.releaseLocked(n, id)
			d.requeueLocked(id, fmt.Sprintf("node %s died (no heartbeat for %v)", name, now.Sub(n.lastSeen)))
		}
		delete(d.nodes, name)
	}
	for id, j := range d.jobs {
		if j.node == "" || j.status.State != jobs.StateRunning || !j.lease.Before(now) {
			continue
		}
		d.m.leaseExpiries.Inc()
		if n := d.nodes[j.node]; n != nil {
			d.releaseLocked(n, id)
		}
		d.requeueLocked(id, fmt.Sprintf("lease expired on node %s", j.node))
	}
	d.placeLocked()
}

// releaseLocked removes a job's booking from a node. Caller holds mu.
func (d *Dispatcher) releaseLocked(n *dnode, id string) {
	delete(n.inflight, id)
	for i, oid := range n.outbox {
		if oid == id {
			n.outbox = append(n.outbox[:i], n.outbox[i+1:]...)
			break
		}
	}
	if j := d.jobs[id]; j != nil && j.node == n.name {
		j.node = ""
		j.delivered = false
	}
}

// requeueLocked puts a non-terminal job back on the unplaced queue after a
// lease loss or failed attempt. Caller holds mu.
func (d *Dispatcher) requeueLocked(id, why string) {
	j := d.jobs[id]
	if j == nil || j.status.State.Terminal() {
		return
	}
	j.status.State = jobs.StateQueued
	j.status.Error = why
	j.node = ""
	j.delivered = false
	_ = d.store.PutStatus(id, j.status) // best effort; Recover heals
	d.queue = append(d.queue, id)
	d.m.reassignments.Inc()
}

// placeLocked drains the unplaced queue onto the least-loaded live nodes
// with free capacity, booking each assignment. Caller holds mu.
func (d *Dispatcher) placeLocked() {
	for len(d.queue) > 0 {
		n := d.pickNodeLocked()
		if n == nil {
			return
		}
		id := d.queue[0]
		d.queue = d.queue[1:]
		j := d.jobs[id]
		if j == nil || j.status.State != jobs.StateQueued || j.node != "" {
			continue // resolved or adopted while waiting
		}
		d.assignLocked(j, n, false)
	}
}

// pickNodeLocked returns the least-loaded node with free capacity (lowest
// booking ratio, ties by fewest in-flight then name), or nil.
func (d *Dispatcher) pickNodeLocked() *dnode {
	var best *dnode
	for _, n := range d.nodes {
		if n.free() <= 0 {
			continue
		}
		if best == nil || n.load() < best.load() ||
			(n.load() == best.load() && (len(n.inflight) < len(best.inflight) ||
				(len(n.inflight) == len(best.inflight) && n.name < best.name))) {
			best = n
		}
	}
	return best
}

// assignLocked books job j on node n. adopted marks a reconcile adoption
// (the worker already holds the work), which skips the outbox. Caller
// holds mu.
func (d *Dispatcher) assignLocked(j *fjob, n *dnode, adopted bool) {
	id := j.status.ID
	j.node = n.name
	j.delivered = adopted
	j.lease = d.clock.Now().Add(d.opts.LeaseTTL)
	j.status.State = jobs.StateRunning
	if j.status.StartedAt.IsZero() {
		j.status.StartedAt = d.clock.Now().UTC()
	}
	j.status.Attempts++
	_ = d.store.PutStatus(id, j.status) // best effort; Recover heals
	n.inflight[id] = true
	if !adopted {
		n.outbox = append(n.outbox, id)
		d.m.assignments.Inc()
		d.m.observePlacement(d.clock.Now().Sub(j.acceptedAt).Seconds())
	} else {
		d.m.adopted.Inc()
	}
}

// removeFromQueueLocked drops id from the unplaced queue if present.
// Caller holds mu.
func (d *Dispatcher) removeFromQueueLocked(id string) {
	for i, qid := range d.queue {
		if qid == id {
			d.queue = append(d.queue[:i], d.queue[i+1:]...)
			return
		}
	}
}

func (d *Dispatcher) inflightLocked() int {
	total := 0
	for _, n := range d.nodes {
		total += len(n.inflight)
	}
	return total
}

// ---- jobs.Service ----

// Submit accepts a spec into the fleet with the same dedup semantics as a
// single-node queue: cached when done, joined when in flight, re-queued
// when failed or cancelled, queued when fresh. Placement happens
// immediately when a node has free capacity.
func (d *Dispatcher) Submit(spec jobs.Spec) (jobs.Status, jobs.SubmitOutcome, error) {
	id, err := spec.ID()
	if err != nil {
		return jobs.Status{}, jobs.SubmitQueued, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return jobs.Status{}, jobs.SubmitQueued, jobs.ErrClosed
	}
	if !d.kinds[spec.Kind] {
		return jobs.Status{}, jobs.SubmitQueued, fmt.Errorf("%w %q", jobs.ErrUnknownKind, spec.Kind)
	}
	d.m.submitted.Inc()
	if j, ok := d.jobs[id]; ok {
		switch j.status.State {
		case jobs.StateDone:
			d.m.cacheHits.Inc()
			return j.status, jobs.SubmitCached, nil
		case jobs.StateFailed, jobs.StateCancelled:
			if err := d.admitLocked(); err != nil {
				return jobs.Status{}, jobs.SubmitQueued, err
			}
			j.cancelRequested = false
			j.status.State = jobs.StateQueued
			j.status.Error = ""
			j.status.Attempts = 0 // resubmission grants a fresh attempt budget
			j.acceptedAt = d.clock.Now()
			j.done = make(chan struct{})
			if err := d.store.PutStatus(id, j.status); err != nil {
				return jobs.Status{}, jobs.SubmitQueued, fmt.Errorf("%w: %v", jobs.ErrStoreUnavailable, err)
			}
			d.queue = append(d.queue, id)
			d.placeLocked()
			return j.status, jobs.SubmitRequeued, nil
		default:
			d.m.deduped.Inc()
			return j.status, jobs.SubmitJoined, nil
		}
	}
	if err := d.admitLocked(); err != nil {
		return jobs.Status{}, jobs.SubmitQueued, err
	}
	j := &fjob{
		spec: spec,
		status: jobs.Status{
			ID:        id,
			Kind:      spec.Kind,
			State:     jobs.StateQueued,
			CreatedAt: d.clock.Now().UTC(),
		},
		acceptedAt: d.clock.Now(),
		done:       make(chan struct{}),
	}
	if err := d.store.PutSpec(id, spec); err != nil {
		return jobs.Status{}, jobs.SubmitQueued, fmt.Errorf("%w: %v", jobs.ErrStoreUnavailable, err)
	}
	if err := d.store.PutStatus(id, j.status); err != nil {
		return jobs.Status{}, jobs.SubmitQueued, fmt.Errorf("%w: %v", jobs.ErrStoreUnavailable, err)
	}
	d.jobs[id] = j
	d.queue = append(d.queue, id)
	d.placeLocked()
	return j.status, jobs.SubmitQueued, nil
}

// admitLocked enforces MaxQueued over the unplaced queue. Caller holds mu.
func (d *Dispatcher) admitLocked() error {
	if d.opts.MaxQueued > 0 && len(d.queue) >= d.opts.MaxQueued {
		return jobs.ErrSaturated
	}
	return nil
}

// Get returns a job's current fleet status.
func (d *Dispatcher) Get(id string) (jobs.Status, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	j, ok := d.jobs[id]
	if !ok {
		return jobs.Status{}, jobs.ErrNotFound
	}
	return j.status, nil
}

// Result returns the replicated artifact of a done job.
func (d *Dispatcher) Result(id string) (json.RawMessage, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	j, ok := d.jobs[id]
	if !ok {
		return nil, jobs.ErrNotFound
	}
	if j.status.State != jobs.StateDone {
		return nil, fmt.Errorf("fabric: %s is %s, no result", id, j.status.State)
	}
	if j.result == nil {
		raw, err := d.store.GetResult(id)
		if err != nil {
			return nil, err
		}
		j.result = raw
	}
	return j.result, nil
}

// List returns every known job, optionally filtered, ordered by creation
// time then id.
func (d *Dispatcher) List(kind string, state jobs.State) []jobs.Status {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]jobs.Status, 0, len(d.jobs))
	for _, j := range d.jobs {
		if kind != "" && j.status.Kind != kind {
			continue
		}
		if state != "" && j.status.State != state {
			continue
		}
		out = append(out, j.status)
	}
	sort.Slice(out, func(i, k int) bool {
		if !out[i].CreatedAt.Equal(out[k].CreatedAt) {
			return out[i].CreatedAt.Before(out[k].CreatedAt)
		}
		return out[i].ID < out[k].ID
	})
	return out
}

// Cancel cancels a fleet job: unplaced (or undelivered) jobs transition
// immediately; delivered jobs are cancelled on their node via the next
// heartbeat's Cancel list, and land terminal when the node reports back.
func (d *Dispatcher) Cancel(id string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	j, ok := d.jobs[id]
	if !ok {
		return jobs.ErrNotFound
	}
	switch {
	case j.status.State.Terminal():
		return fmt.Errorf("fabric: %s already %s", id, j.status.State)
	case j.status.State == jobs.StateQueued:
		d.removeFromQueueLocked(id)
		d.terminalLocked(j, jobs.StateCancelled, "cancelled before placement")
		return nil
	case !j.delivered:
		// Placed but never pulled: the node has not seen it, revoke directly.
		if n := d.nodes[j.node]; n != nil {
			d.releaseLocked(n, id)
		}
		d.terminalLocked(j, jobs.StateCancelled, "cancelled before delivery")
		return nil
	default:
		j.cancelRequested = true
		return nil
	}
}

// terminalLocked records a terminal transition reached dispatcher-side
// (cancellations, exhausted attempt budgets). Caller holds mu.
func (d *Dispatcher) terminalLocked(j *fjob, state jobs.State, msg string) {
	j.status.State = state
	j.status.Error = msg
	j.status.FinishedAt = d.clock.Now().UTC()
	_ = d.store.PutStatus(j.status.ID, j.status)
	close(j.done)
	switch state {
	case jobs.StateFailed:
		d.failedN++
	case jobs.StateCancelled:
		d.cancelledN++
	}
}

// Wait blocks until the job reaches a terminal state or ctx expires.
func (d *Dispatcher) Wait(ctx context.Context, id string) (jobs.Status, error) {
	d.mu.Lock()
	j, ok := d.jobs[id]
	if !ok {
		d.mu.Unlock()
		return jobs.Status{}, jobs.ErrNotFound
	}
	done := j.done
	d.mu.Unlock()
	select {
	case <-done:
		return d.Get(id)
	case <-ctx.Done():
		return jobs.Status{}, ctx.Err()
	}
}

// Health reports whether the fleet would accept and eventually run a fresh
// submission. No live nodes is a degradation (queued work cannot start),
// though intake continues.
func (d *Dispatcher) Health() jobs.Health {
	d.mu.Lock()
	defer d.mu.Unlock()
	var reasons []string
	if d.closed {
		reasons = append(reasons, "closed")
	}
	if d.opts.MaxQueued > 0 && len(d.queue) >= d.opts.MaxQueued {
		reasons = append(reasons, "saturated")
	}
	if len(d.nodes) == 0 {
		reasons = append(reasons, "no_nodes")
	}
	return jobs.Health{OK: len(reasons) == 0, Degraded: reasons}
}

// Metrics derives the legacy JSON snapshot from the fleet instruments:
// Workers is fleet capacity, Running fleet-wide booked work.
func (d *Dispatcher) Metrics() jobs.MetricsSnapshot {
	d.mu.Lock()
	capacity := 0
	for _, n := range d.nodes {
		capacity += n.capacity
	}
	depth, running := len(d.queue), d.inflightLocked()
	doneN, failedN, cancelledN := d.doneN, d.failedN, d.cancelledN
	d.mu.Unlock()
	snap := jobs.MetricsSnapshot{
		Workers:    capacity,
		QueueDepth: depth,
		Running:    running,
		Submitted:  int64(d.m.submitted.Value()),
		Deduped:    int64(d.m.deduped.Value()),
		CacheHits:  int64(d.m.cacheHits.Value()),
		Requeued:   int64(d.m.reassignments.Value()),
		Completed:  doneN,
		Failed:     failedN,
		Cancelled:  cancelledN,
	}
	if snap.Submitted > 0 {
		snap.CacheHitRate = float64(snap.CacheHits) / float64(snap.Submitted)
	}
	return snap
}

// WriteMetrics renders the pad_fleet_* registry as Prometheus text.
func (d *Dispatcher) WriteMetrics(w io.Writer) error { return d.m.reg.WritePrometheus(w) }

// VerifyArtifacts re-hashes every replicated artifact in the dispatcher
// store.
func (d *Dispatcher) VerifyArtifacts() (jobs.IntegrityReport, error) {
	return d.store.VerifyArtifacts()
}

// ---- node protocol ----

// Register admits (or re-admits) a worker node and reconciles its rebuilt
// local state; see RegisterRequest/RegisterResponse for the contract.
func (d *Dispatcher) Register(req RegisterRequest) (RegisterResponse, error) {
	if req.Node == "" || req.Capacity < 1 {
		return RegisterResponse{}, errors.New("fabric: register needs a node name and capacity >= 1")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return RegisterResponse{}, jobs.ErrClosed
	}
	d.m.registrations.Inc()
	// A re-registration replaces the previous registration wholesale; note
	// which jobs the old registration held so unclaimed ones re-queue.
	previously := make(map[string]bool)
	if old := d.nodes[req.Node]; old != nil {
		for id := range old.inflight {
			previously[id] = true
		}
	}
	n := &dnode{
		name:     req.Node,
		capacity: req.Capacity,
		inflight: make(map[string]bool),
		lastSeen: d.clock.Now(),
	}
	d.nodes[req.Node] = n

	resp := RegisterResponse{
		LeaseSec:     d.opts.LeaseTTL.Seconds(),
		HeartbeatSec: d.opts.Heartbeat.Seconds(),
	}
	for _, id := range req.InProgress {
		j := d.jobs[id]
		switch {
		case j == nil || j.status.State.Terminal():
			resp.Drop = append(resp.Drop, id)
		case j.node != "" && j.node != req.Node && !previously[id]:
			// Reassigned to a live node elsewhere while this one was away.
			resp.Drop = append(resp.Drop, id)
		default:
			d.claimLocked(j, n, previously, true)
			resp.Keep = append(resp.Keep, id)
		}
	}
	for _, id := range req.Finished {
		j := d.jobs[id]
		if j == nil || j.status.State.Terminal() {
			continue // already recorded (or never this fleet's job)
		}
		// The artifact exists on the node but never reached us: claim the
		// job for this node and ask for the result instead of re-running.
		d.claimLocked(j, n, previously, true)
		resp.Want = append(resp.Want, id)
	}
	// Anything the old registration held that the new one no longer
	// reports was lost before the worker persisted it: re-queue.
	for id := range previously {
		d.releaseLocked(n, id)
		if j := d.jobs[id]; j != nil && j.status.State == jobs.StateRunning {
			j.node = "" // old booking is gone with the old registration
			d.requeueLocked(id, fmt.Sprintf("node %s re-registered without it", req.Node))
		}
	}
	d.placeLocked()
	return resp, nil
}

// claimLocked books a job its node already holds onto a (re-)registration:
// the worker reported it in progress, so it is booked here without touching
// the outbox, any stale booking elsewhere is released, and the job drops out
// of the previous registration's unclaimed set. Caller holds mu.
// padvet:holds d.mu
func (d *Dispatcher) claimLocked(j *fjob, onto *dnode, previously map[string]bool, adopted bool) {
	if j.status.State == jobs.StateQueued {
		d.removeFromQueueLocked(j.status.ID)
	}
	if j.node != "" && j.node != onto.name {
		if other := d.nodes[j.node]; other != nil {
			d.releaseLocked(other, j.status.ID)
		}
	}
	delete(previously, j.status.ID)
	d.assignLocked(j, onto, adopted)
}

// Heartbeat renews the node's liveness and the leases of every reported
// assignment, and returns pending cancel/drop control traffic.
func (d *Dispatcher) Heartbeat(req HeartbeatRequest) (HeartbeatResponse, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := d.nodes[req.Node]
	if n == nil {
		return HeartbeatResponse{}, ErrUnknownNode
	}
	d.m.heartbeats.Inc()
	n.lastSeen = d.clock.Now()
	var resp HeartbeatResponse
	for _, id := range req.InProgress {
		j := d.jobs[id]
		if j == nil || j.node != req.Node || j.status.State != jobs.StateRunning {
			resp.Drop = append(resp.Drop, id)
			continue
		}
		j.lease = n.lastSeen.Add(d.opts.LeaseTTL)
		if j.cancelRequested {
			resp.Cancel = append(resp.Cancel, id)
		}
	}
	return resp, nil
}

// Pull delivers up to req.Max pending assignments to the node.
func (d *Dispatcher) Pull(req PullRequest) (PullResponse, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := d.nodes[req.Node]
	if n == nil {
		return PullResponse{}, ErrUnknownNode
	}
	n.lastSeen = d.clock.Now()
	d.placeLocked() // top the outbox up before draining it
	var resp PullResponse
	for req.Max > 0 && len(n.outbox) > 0 {
		id := n.outbox[0]
		n.outbox = n.outbox[1:]
		j := d.jobs[id]
		if j == nil || j.node != req.Node || j.status.State != jobs.StateRunning {
			continue // resolved while parked in the outbox
		}
		j.delivered = true
		j.lease = n.lastSeen.Add(d.opts.LeaseTTL)
		resp.Assignments = append(resp.Assignments, Assignment{ID: id, Spec: j.spec})
		req.Max--
	}
	return resp, nil
}

// releaseAndPlaceLocked drops every booking of a reported job — the stale
// assignee (if any) and the reporting node — then refills the freed
// capacity from the unplaced queue. Caller holds mu.
// padvet:holds d.mu
func (d *Dispatcher) releaseAndPlaceLocked(j *fjob, n *dnode, id string) {
	if held := d.nodes[j.node]; held != nil {
		d.releaseLocked(held, id)
	}
	d.releaseLocked(n, id)
	d.placeLocked()
}

// Complete records a node's terminal report. Done reports carry the
// artifact, which is verified against its sha256 content address before
// being replicated into the dispatcher store; failures consume the
// assignment budget and re-queue until it is exhausted.
func (d *Dispatcher) Complete(req CompleteRequest) (CompleteResponse, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := d.nodes[req.Node]
	if n == nil {
		return CompleteResponse{}, ErrUnknownNode
	}
	n.lastSeen = d.clock.Now()
	j := d.jobs[req.ID]
	if j == nil {
		return CompleteResponse{}, jobs.ErrNotFound
	}
	if j.status.State.Terminal() {
		defer d.releaseAndPlaceLocked(j, n, req.ID)
		if j.status.State == jobs.StateDone && req.State == jobs.StateDone {
			if req.ResultSum == j.status.ResultSum {
				return CompleteResponse{Outcome: OutcomeDuplicate}, nil
			}
			// A duplicated execution produced different bytes: that is the
			// exactly-once violation the chaos harness hunts. Keep the
			// first artifact, count the divergence loudly.
			d.m.divergent.Inc()
			return CompleteResponse{Outcome: OutcomeDivergent}, nil
		}
		return CompleteResponse{Outcome: OutcomeStale}, nil
	}
	// stale: the reporting node no longer holds the assignment (the lease
	// lapsed and the job re-queued or moved to another node). A done report
	// is still welcome — the artifact is valid wherever it ran — but a
	// failed/cancelled report from a non-assignee must not disturb the
	// current assignment.
	stale := j.node != req.Node
	switch req.State {
	case jobs.StateDone:
		if req.ResultSum == "" || jobs.Sum(req.Result) != req.ResultSum {
			// Refuse the replication: the artifact was torn somewhere
			// between the worker's disk and here.
			d.m.integrityRejects.Inc()
			if stale {
				d.releaseLocked(n, req.ID)
			} else {
				// It was this node's assignment: burn the attempt too.
				d.releaseAndPlaceLocked(j, n, req.ID)
				d.failOrRequeueLocked(j, fmt.Sprintf("artifact integrity rejected from node %s", req.Node))
			}
			return CompleteResponse{}, ErrIntegrity
		}
		sum, err := d.store.PutResult(req.ID, req.Result)
		if err != nil {
			// Keep the claim; the worker retries the ack and the lease
			// protects the assignment meanwhile.
			return CompleteResponse{}, fmt.Errorf("%w: %v", jobs.ErrStoreUnavailable, err)
		}
		d.removeFromQueueLocked(req.ID)
		j.status.State = jobs.StateDone
		j.status.Error = ""
		j.status.ResultSum = sum
		j.status.FinishedAt = d.clock.Now().UTC()
		j.status.Duration = time.Duration(req.DurationNS)
		j.result = req.Result
		_ = d.store.PutStatus(req.ID, j.status)
		close(j.done)
		d.doneN++
		n.completions++
		d.m.completions.With(req.Node, string(jobs.StateDone)).Inc()
		d.m.replications.Inc()
		d.m.replicatedBytes.Add(float64(len(req.Result)))
		d.releaseAndPlaceLocked(j, n, req.ID)
		return CompleteResponse{Outcome: OutcomeRecorded}, nil
	case jobs.StateCancelled:
		if stale {
			d.releaseLocked(n, req.ID)
			return CompleteResponse{Outcome: OutcomeStale}, nil
		}
		d.releaseAndPlaceLocked(j, n, req.ID)
		n.completions++
		d.m.completions.With(req.Node, string(jobs.StateCancelled)).Inc()
		if j.cancelRequested {
			d.terminalLocked(j, jobs.StateCancelled, req.Error)
			return CompleteResponse{Outcome: OutcomeRecorded}, nil
		}
		// The node shed the job (local drain, deadline churn) without a
		// client asking: treat like a failed attempt and retry elsewhere.
		d.failOrRequeueLocked(j, fmt.Sprintf("node %s shed the job: %s", req.Node, req.Error))
		return CompleteResponse{Outcome: OutcomeRecorded}, nil
	case jobs.StateFailed:
		if stale {
			d.releaseLocked(n, req.ID)
			return CompleteResponse{Outcome: OutcomeStale}, nil
		}
		d.releaseAndPlaceLocked(j, n, req.ID)
		n.completions++
		d.m.completions.With(req.Node, string(jobs.StateFailed)).Inc()
		// The runner's error crossed the wire by value; it re-surfaces
		// verbatim on the v1 API whether the job retries or fails here.
		d.failOrRequeueLocked(j, req.Error)
		return CompleteResponse{Outcome: OutcomeRecorded}, nil
	default:
		return CompleteResponse{}, fmt.Errorf("fabric: complete with non-terminal state %q", req.State)
	}
}

// failOrRequeueLocked consumes one unit of the assignment budget: re-queue
// while attempts remain, terminal failed otherwise. Caller holds mu.
func (d *Dispatcher) failOrRequeueLocked(j *fjob, msg string) {
	if j.status.Attempts < d.opts.MaxAttempts {
		d.requeueLocked(j.status.ID, msg)
		d.placeLocked()
		return
	}
	d.terminalLocked(j, jobs.StateFailed, msg)
}

// Report snapshots the fleet for GET /fabric/v1/nodes.
func (d *Dispatcher) Report() FleetReport {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.clock.Now()
	rep := FleetReport{
		QueueDepth:       len(d.queue),
		Inflight:         d.inflightLocked(),
		Assignments:      int64(d.m.assignments.Value()),
		Reassignments:    int64(d.m.reassignments.Value()),
		LeaseExpiries:    int64(d.m.leaseExpiries.Value()),
		NodeDeaths:       int64(d.m.nodeDeaths.Value()),
		IntegrityRejects: int64(d.m.integrityRejects.Value()),
		Divergent:        int64(d.m.divergent.Value()),
		Replications:     int64(d.m.replications.Value()),
	}
	names := make([]string, 0, len(d.nodes))
	for name := range d.nodes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n := d.nodes[name]
		rep.Capacity += n.capacity
		rep.Completions += n.completions
		rep.Nodes = append(rep.Nodes, NodeInfo{
			Node:        n.name,
			Capacity:    n.capacity,
			Inflight:    len(n.inflight),
			Outbox:      len(n.outbox),
			LastSeenMS:  now.Sub(n.lastSeen).Milliseconds(),
			Completions: n.completions,
		})
	}
	return rep
}
