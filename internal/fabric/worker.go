package fabric

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"priceadaptive/internal/fault"
	"priceadaptive/internal/jobs"
	"priceadaptive/internal/obsv"
)

// WorkerOptions configures a worker node.
type WorkerOptions struct {
	// Name is the node's stable identity across restarts; required.
	Name string
	// Dispatcher is the dispatcher's base URL; required.
	Dispatcher string
	// DataDir is the node's local artifact store; required. It survives
	// restarts — the rebuilt in-progress set comes from here.
	DataDir string
	// Capacity is the local worker-pool size and the booking capacity
	// advertised to the dispatcher (default 2).
	Capacity int
	// HTTP carries the node protocol; nil means http.DefaultClient. The
	// chaos harness substitutes an in-process transport.
	HTTP *http.Client
	// Clock drives the poll/heartbeat loop; nil means the wall clock.
	Clock fault.Clock
	// Poll is the control-loop tick (default 25ms).
	Poll time.Duration
	// Heartbeat overrides the dispatcher-advertised cadence when > 0.
	Heartbeat time.Duration
	// Injector and Seed feed the local queue's fault sites (chaos).
	Injector fault.Injector
	Seed     int64
	// Retry is the local queue's retry policy.
	Retry jobs.RetryPolicy
	// Metrics backs the local queue's pad_* instruments; nil means private.
	Metrics *obsv.Registry
}

// Worker is a pull-based fleet node: a local jobs.Queue wrapped in the
// /fabric/v1 protocol. It registers with its rebuilt local state, pulls
// assignments, executes them on the local pool, and acks terminal outcomes
// (with the artifact) through the queue's terminal hook.
type Worker struct {
	opts  WorkerOptions
	clock fault.Clock
	store *jobs.Store
	queue *jobs.Queue
	fc    *Client

	ctx    context.Context // padvet:allow ctx-field node lifetime root, cancelled in Close
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu sync.Mutex
	// claimed is the assignment set this node holds leases for; acks is the
	// FIFO of locally-terminal jobs not yet reported (ackSet dedups it).
	claimed map[string]bool // guarded by mu
	acks    []string        // guarded by mu
	ackSet  map[string]bool // guarded by mu
	// registered gates the loop; hbEvery/lastHB drive the heartbeat cadence.
	registered bool          // guarded by mu
	hbEvery    time.Duration // guarded by mu
	lastHB     time.Time     // guarded by mu
	killed     bool          // guarded by mu
}

// NewWorker opens the node's local store and builds its queue (builtin
// kinds registered, crash recovery run). Call Start to join the fleet.
func NewWorker(opts WorkerOptions) (*Worker, error) {
	if opts.Name == "" || opts.Dispatcher == "" || opts.DataDir == "" {
		return nil, fmt.Errorf("fabric: worker needs Name, Dispatcher and DataDir")
	}
	if opts.Capacity <= 0 {
		opts.Capacity = 2
	}
	if opts.Clock == nil {
		opts.Clock = fault.Wall{}
	}
	if opts.Poll <= 0 {
		opts.Poll = 25 * time.Millisecond
	}
	store, err := jobs.Open(opts.DataDir)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background()) // nosleep:allow worker-lifetime root, cancelled in Close/Kill
	w := &Worker{
		opts:    opts,
		clock:   opts.Clock,
		store:   store,
		ctx:     ctx,
		cancel:  cancel,
		claimed: make(map[string]bool),
		ackSet:  make(map[string]bool),
	}
	qopts := []jobs.Option{
		jobs.WithWorkers(opts.Capacity),
		jobs.WithClock(opts.Clock),
		jobs.WithSeed(opts.Seed),
		jobs.WithRetryPolicy(opts.Retry),
		jobs.WithTerminalHook(w.onTerminal),
	}
	if opts.Injector != nil {
		qopts = append(qopts, jobs.WithInjector(opts.Injector))
	}
	if opts.Metrics != nil {
		qopts = append(qopts, jobs.WithMetrics(opts.Metrics))
	}
	w.queue = jobs.NewQueue(store, qopts...)
	jobs.RegisterBuiltins(w.queue)
	if _, err := w.queue.Recover(); err != nil {
		cancel()
		return nil, err
	}
	w.fc = NewClient(opts.Dispatcher)
	w.fc.HTTP = opts.HTTP
	w.fc.Clock = opts.Clock
	return w, nil
}

// Queue exposes the node's local queue (status inspection, metrics).
func (w *Worker) Queue() *jobs.Queue { return w.queue }

// VerifyArtifacts re-hashes the node's local artifact store.
func (w *Worker) VerifyArtifacts() (jobs.IntegrityReport, error) {
	return w.store.VerifyArtifacts()
}

// Start runs the local pool and the fleet control loop.
func (w *Worker) Start() {
	w.queue.Start()
	w.wg.Add(1)
	go w.loop()
}

// Close leaves the fleet gracefully: the control loop stops, then the local
// queue shuts down (in-flight work parks back as queued in the local store,
// to be reconciled at the next registration).
func (w *Worker) Close() {
	w.cancel()
	w.wg.Wait()
	w.queue.Close()
}

// Kill models a process crash: the control loop stops and the local queue
// aborts hard — no drain, no further acks. The local store keeps whatever
// the crash left; a restarted worker rebuilds from it.
func (w *Worker) Kill() {
	w.mu.Lock()
	w.killed = true
	w.mu.Unlock()
	w.cancel()
	w.wg.Wait()
	w.queue.Abort()
}

// onTerminal is the queue's terminal hook: every local completion becomes a
// pending ack to the dispatcher.
func (w *Worker) onTerminal(st jobs.Status) {
	w.enqueueAck(st.ID)
}

func (w *Worker) enqueueAck(id string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.killed || w.ackSet[id] {
		return
	}
	w.ackSet[id] = true
	w.acks = append(w.acks, id)
}

func (w *Worker) loop() {
	defer w.wg.Done()
	for {
		if err := w.clock.Sleep(w.ctx, w.opts.Poll); err != nil {
			return
		}
		w.tick()
	}
}

// tick is one pass of the control loop: (re)register, flush pending acks,
// heartbeat when due, pull fresh work.
func (w *Worker) tick() {
	w.mu.Lock()
	registered := w.registered
	w.mu.Unlock()
	if !registered {
		if err := w.register(); err != nil {
			return // dispatcher unreachable; try again next tick
		}
	}
	w.flushAcks()
	w.heartbeatIfDue()
	w.pull()
}

// register announces the node with its rebuilt local state (the simq
// RebuildSimulatorList pattern): InProgress from the local store's
// queued/running entries, Finished from its terminal ones — so a restart
// reconciles with the dispatcher instead of re-running work.
func (w *Worker) register() error {
	entries, orphans, err := w.store.Scan()
	if err != nil {
		return err
	}
	w.store.Reconcile(orphans)
	req := RegisterRequest{Node: w.opts.Name, Capacity: w.opts.Capacity}
	for _, e := range entries {
		if e.Status.State.Terminal() {
			req.Finished = append(req.Finished, e.ID)
		} else {
			req.InProgress = append(req.InProgress, e.ID)
		}
	}
	sort.Strings(req.InProgress)
	sort.Strings(req.Finished)
	resp, err := w.fc.Register(w.ctx, req)
	if err != nil {
		return err
	}
	w.mu.Lock()
	w.registered = true
	w.hbEvery = w.opts.Heartbeat
	if w.hbEvery <= 0 {
		w.hbEvery = time.Duration(resp.HeartbeatSec * float64(time.Second))
	}
	if w.hbEvery <= 0 {
		w.hbEvery = 3 * time.Second
	}
	w.lastHB = w.clock.Now()
	for _, id := range resp.Keep {
		w.claimed[id] = true
	}
	w.mu.Unlock()
	for _, id := range resp.Drop {
		w.drop(id)
	}
	for _, id := range resp.Want {
		// The dispatcher never received this artifact: ack it from the
		// local store, no re-run.
		w.mu.Lock()
		w.claimed[id] = true
		w.mu.Unlock()
		w.enqueueAck(id)
	}
	return nil
}

// drop abandons a job the dispatcher no longer credits to this node:
// cancel it locally and forget any pending ack.
func (w *Worker) drop(id string) {
	w.mu.Lock()
	delete(w.claimed, id)
	if w.ackSet[id] {
		delete(w.ackSet, id)
		for i, aid := range w.acks {
			if aid == id {
				w.acks = append(w.acks[:i], w.acks[i+1:]...)
				break
			}
		}
	}
	w.mu.Unlock()
	if st, err := w.queue.Get(id); err == nil && !st.State.Terminal() {
		_ = w.queue.Cancel(id)
	}
}

// flushAcks reports every locally-terminal job to the dispatcher, artifact
// attached. Transport failures keep the ack queued for the next tick; an
// unknown-node answer forces a re-registration; an integrity reject drops
// the claim (the dispatcher already re-queued the job elsewhere).
func (w *Worker) flushAcks() {
	for {
		w.mu.Lock()
		if len(w.acks) == 0 || !w.registered {
			w.mu.Unlock()
			return
		}
		id := w.acks[0]
		w.mu.Unlock()

		st, err := w.store.GetStatus(id)
		if err != nil {
			// Status vanished locally (aborted mid-write): nothing to
			// report; the lease will recycle the job if it still matters.
			w.dropAck(id)
			continue
		}
		if !st.State.Terminal() {
			w.dropAck(id) // re-queued locally (retry policy); not terminal after all
			continue
		}
		req := CompleteRequest{
			Node:       w.opts.Name,
			ID:         id,
			State:      st.State,
			Error:      st.Error,
			Attempts:   st.Attempts,
			DurationNS: st.Duration.Nanoseconds(),
		}
		if st.State == jobs.StateDone {
			raw, rerr := w.store.GetResult(id)
			if rerr != nil {
				// Artifact lost under us: report the failure honestly so
				// the dispatcher re-queues instead of waiting out the lease.
				req.State = jobs.StateFailed
				req.Error = fmt.Sprintf("artifact unreadable on node %s: %v", w.opts.Name, rerr)
			} else {
				req.Result = raw
				req.ResultSum = st.ResultSum
			}
		}
		_, err = w.fc.Complete(w.ctx, req)
		switch {
		case err == nil, IsIntegrityReject(err):
			w.dropAck(id)
			w.mu.Lock()
			delete(w.claimed, id)
			w.mu.Unlock()
		case IsUnknownNode(err):
			w.mu.Lock()
			w.registered = false
			w.mu.Unlock()
			return
		default:
			return // transport/store trouble: retry the whole backlog next tick
		}
	}
}

func (w *Worker) dropAck(id string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.ackSet[id] {
		return
	}
	delete(w.ackSet, id)
	for i, aid := range w.acks {
		if aid == id {
			w.acks = append(w.acks[:i], w.acks[i+1:]...)
			return
		}
	}
}

// heartbeatIfDue renews liveness and assignment leases on the advertised
// cadence, and applies returned control traffic.
func (w *Worker) heartbeatIfDue() {
	w.mu.Lock()
	if !w.registered || w.clock.Now().Sub(w.lastHB) < w.hbEvery {
		w.mu.Unlock()
		return
	}
	w.lastHB = w.clock.Now()
	req := HeartbeatRequest{Node: w.opts.Name}
	for id := range w.claimed {
		if st, err := w.queue.Get(id); err == nil && !st.State.Terminal() {
			req.InProgress = append(req.InProgress, id)
		}
	}
	sort.Strings(req.InProgress)
	req.Free = w.freeLocked()
	w.mu.Unlock()

	resp, err := w.fc.Heartbeat(w.ctx, req)
	if err != nil {
		if IsUnknownNode(err) {
			w.mu.Lock()
			w.registered = false
			w.mu.Unlock()
		}
		return
	}
	for _, id := range resp.Cancel {
		// Client-requested cancellation: cancel locally; the terminal hook
		// acks the cancelled state back.
		if st, gerr := w.queue.Get(id); gerr == nil && !st.State.Terminal() {
			_ = w.queue.Cancel(id)
		}
	}
	for _, id := range resp.Drop {
		w.drop(id)
	}
}

// freeLocked is the node's spare booking capacity. Caller holds mu.
func (w *Worker) freeLocked() int {
	free := w.opts.Capacity - len(w.claimed)
	if free < 0 {
		return 0
	}
	return free
}

// pull fetches fresh assignments up to the node's spare capacity and feeds
// them to the local queue. A cache hit (the local store already holds the
// artifact from a previous life) acks immediately without re-running.
func (w *Worker) pull() {
	w.mu.Lock()
	free := 0
	if w.registered {
		free = w.freeLocked()
	}
	w.mu.Unlock()
	if free <= 0 {
		return
	}
	resp, err := w.fc.Pull(w.ctx, PullRequest{Node: w.opts.Name, Max: free})
	if err != nil {
		if IsUnknownNode(err) {
			w.mu.Lock()
			w.registered = false
			w.mu.Unlock()
		}
		return
	}
	for _, a := range resp.Assignments {
		w.mu.Lock()
		w.claimed[a.ID] = true
		w.mu.Unlock()
		_, outcome, err := w.queue.Submit(a.Spec)
		switch {
		case err != nil:
			// Local intake refused (unknown kind, store trouble): report a
			// failed attempt so the dispatcher retries elsewhere.
			st, _ := w.store.GetStatus(a.ID)
			_, _ = w.fc.Complete(w.ctx, CompleteRequest{
				Node: w.opts.Name, ID: a.ID, State: jobs.StateFailed,
				Error: fmt.Sprintf("node %s refused intake: %v", w.opts.Name, err), Attempts: st.Attempts,
			})
			w.mu.Lock()
			delete(w.claimed, a.ID)
			w.mu.Unlock()
		case outcome == jobs.SubmitCached:
			w.enqueueAck(a.ID)
		}
	}
}
