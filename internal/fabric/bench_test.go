package fabric

import (
	"context"
	"testing"
	"time"
)

// TestLoadGenSmoke runs a miniature load-generator pass and checks the
// report's internal consistency; the committed BENCH_server.json is seeded
// from the full-size run (paddispatch -loadgen).
func TestLoadGenSmoke(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	rep, err := LoadGen(ctx, t.TempDir(), LoadGenOptions{
		Nodes:    2,
		Capacity: 2,
		Jobs:     16,
		Work:     500,
	})
	if err != nil {
		t.Fatalf("loadgen: %v", err)
	}
	if rep.Replications != 16 {
		t.Errorf("replications = %d, want 16", rep.Replications)
	}
	if rep.SubmitLatency.Count != 16 {
		t.Errorf("submit samples = %d, want 16", rep.SubmitLatency.Count)
	}
	if rep.Placement.Count == 0 {
		t.Error("no placement-latency samples recorded")
	}
	if rep.SubmitPerSec <= 0 || rep.JobsPerSec <= 0 || rep.E2ESec <= 0 {
		t.Errorf("non-positive throughput: %+v", rep)
	}
	if rep.Placement.P50 > rep.Placement.P99 || rep.Placement.P99 > rep.Placement.Max {
		t.Errorf("quantiles out of order: %+v", rep.Placement)
	}
	t.Logf("smoke: %.0f submits/s, %.0f jobs/s e2e, placement p50=%.4fs p99=%.4fs",
		rep.SubmitPerSec, rep.JobsPerSec, rep.Placement.P50, rep.Placement.P99)
}
