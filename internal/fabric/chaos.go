package fabric

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"time"

	"priceadaptive/internal/fault"
	"priceadaptive/internal/jobs"
)

// Router is an in-process http.RoundTripper over a swappable handler: the
// chaos harness's network. Swapping the handler models a dispatcher
// restart; SetDown models a partition (every request errors at the
// transport, exactly like a dead TCP endpoint).
type Router struct {
	mu   sync.Mutex
	h    http.Handler // guarded by mu
	down bool         // guarded by mu
}

// NewRouter returns a router with no handler installed (all requests fail
// until Swap).
func NewRouter() *Router { return &Router{} }

// Swap installs the handler serving subsequent requests.
func (r *Router) Swap(h http.Handler) {
	r.mu.Lock()
	r.h = h
	r.mu.Unlock()
}

// SetDown partitions (true) or heals (false) the route.
func (r *Router) SetDown(down bool) {
	r.mu.Lock()
	r.down = down
	r.mu.Unlock()
}

// RoundTrip serves the request in-process through the installed handler.
func (r *Router) RoundTrip(req *http.Request) (*http.Response, error) {
	r.mu.Lock()
	h, down := r.h, r.down
	r.mu.Unlock()
	if down || h == nil {
		return nil, errors.New("fabric: dispatcher unreachable")
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Result(), nil
}

// Client returns an http.Client carried by this router.
func (r *Router) Client() *http.Client { return &http.Client{Transport: r} }

// FleetChaosOptions configures the fleet chaos harness. Everything is
// derived from Seed: same seed, same kill points, same fault stream, same
// verdict.
type FleetChaosOptions struct {
	// Seed drives every random decision.
	Seed int64
	// Cycles is the number of kill/restart cycles (default 25). Every cycle
	// kills or cleanly closes worker nodes; one seeded cycle additionally
	// restarts the dispatcher itself.
	Cycles int
	// Nodes is the worker fleet size (default 3); Capacity the per-node
	// pool size (default 2).
	Nodes    int
	Capacity int
	// JobsPerCycle is how many submissions each cycle attempts (default 6);
	// JobSpace bounds the distinct identities so cycles collide with
	// earlier jobs (default 24).
	JobsPerCycle int
	JobSpace     int
	// Rules is the fault mix injected into every worker's local queue; nil
	// uses the single-node chaos spread (store errors, torn writes, worker
	// panics, stalls, context churn).
	Rules []fault.Rule
	// Retry is each worker's local retry policy (default 3 attempts, small
	// backoff).
	Retry jobs.RetryPolicy
}

func (o FleetChaosOptions) withDefaults() FleetChaosOptions {
	if o.Cycles <= 0 {
		o.Cycles = 25
	}
	if o.Nodes <= 0 {
		o.Nodes = 3
	}
	if o.Capacity <= 0 {
		o.Capacity = 2
	}
	if o.JobsPerCycle <= 0 {
		o.JobsPerCycle = 6
	}
	if o.JobSpace <= 0 {
		o.JobSpace = 24
	}
	if o.Rules == nil {
		o.Rules = []fault.Rule{
			{SitePrefix: jobs.SiteWriteResult, Kind: fault.Torn, Rate: 0.05, Frac: 0.5},
			{SitePrefix: "store.write", Kind: fault.Err, Rate: 0.04},
			{SitePrefix: "worker", Kind: fault.Panic, Rate: 0.04},
			{SitePrefix: "worker", Kind: fault.Stall, Rate: 0.04, Delay: time.Millisecond},
			{SitePrefix: "worker", Kind: fault.Cancel, Rate: 0.03},
		}
	}
	if o.Retry.MaxAttempts == 0 {
		o.Retry = jobs.RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 20 * time.Millisecond, Jitter: 0.2}
	}
	return o
}

// FleetChaosReport is the harness verdict, serialized as the CI fabric
// artifact.
type FleetChaosReport struct {
	Seed   int64 `json:"seed"`
	Cycles int   `json:"cycles"`
	// NodeKills are hard worker crashes, NodeCloses clean shutdowns,
	// DispatcherRestarts dispatcher crash/recover events.
	NodeKills          int `json:"node_kills"`
	NodeCloses         int `json:"node_closes"`
	DispatcherRestarts int `json:"dispatcher_restarts"`
	Submitted          int `json:"submitted"`
	DistinctJobs       int `json:"distinct_jobs"`
	// Fleet counters accumulated across dispatcher lives.
	Assignments      int64 `json:"assignments"`
	Reassignments    int64 `json:"reassignments"`
	LeaseExpiries    int64 `json:"lease_expiries"`
	NodeDeaths       int64 `json:"node_deaths"`
	IntegrityRejects int64 `json:"integrity_rejects"`
	Replications     int64 `json:"replications"`
	// Lost lists jobs that never reached done even after the fault-free
	// convergence pass; DupEffects jobs whose recorded artifact checksum
	// ever changed (a duplicated side effect). Both must be empty.
	Lost       []string `json:"lost,omitempty"`
	DupEffects []string `json:"dup_effects,omitempty"`
	// Divergent counts duplicate completions whose checksums disagreed.
	Divergent int64 `json:"divergent"`
	// DispatcherIntegrity and WorkerIntegrity are the final artifact-store
	// sweeps of every store in the fleet.
	DispatcherIntegrity jobs.IntegrityReport   `json:"dispatcher_integrity"`
	WorkerIntegrity     []jobs.IntegrityReport `json:"worker_integrity"`
	// Converged is the aggregate verdict.
	Converged bool `json:"converged"`
}

// fleet chaos timing: real clocks, shrunk so 25+ cycles stay fast while the
// ordering (poll << heartbeat << nodeTTL < leaseTTL) matches production.
const (
	chaosLeaseTTL  = 400 * time.Millisecond
	chaosNodeTTL   = 300 * time.Millisecond
	chaosHeartbeat = 25 * time.Millisecond
	chaosSweep     = 20 * time.Millisecond
	chaosPoll      = 5 * time.Millisecond
)

func chaosDispatcher(dir string) (*Dispatcher, *jobs.Store, error) {
	store, err := jobs.Open(filepath.Join(dir, "dispatcher"))
	if err != nil {
		return nil, nil, err
	}
	d := NewDispatcher(store, DispatcherOptions{
		LeaseTTL:  chaosLeaseTTL,
		NodeTTL:   chaosNodeTTL,
		Heartbeat: chaosHeartbeat,
		Sweep:     chaosSweep,
	})
	if _, err := d.Recover(); err != nil {
		return nil, nil, err
	}
	d.Start()
	return d, store, nil
}

func chaosWorker(dir string, i int, router *Router, inj fault.Injector, seed int64, retry jobs.RetryPolicy, capacity int) (*Worker, error) {
	w, err := NewWorker(WorkerOptions{
		Name:       fmt.Sprintf("node%d", i),
		Dispatcher: "http://dispatcher",
		DataDir:    filepath.Join(dir, fmt.Sprintf("node%d", i)),
		Capacity:   capacity,
		HTTP:       router.Client(),
		Poll:       chaosPoll,
		Injector:   inj,
		Seed:       seed,
		Retry:      retry,
	})
	if err != nil {
		return nil, err
	}
	w.Start()
	return w, nil
}

// FleetChaos repeatedly boots a 1-dispatcher/N-worker fleet over dir,
// submits seeded jobs through the v1 API, kills and restarts worker nodes
// mid-flight (and the dispatcher itself once, at a seeded cycle), then runs
// a fault-free convergence pass. It asserts the fabric's robustness
// contract: no lost jobs, no duplicated side effects, full artifact
// integrity on every store in the fleet.
func FleetChaos(dir string, opts FleetChaosOptions) (*FleetChaosReport, error) {
	opts = opts.withDefaults()
	root := fault.NewSource(opts.Seed)
	rep := &FleetChaosReport{Seed: opts.Seed, Cycles: opts.Cycles}
	// sums pins each job's artifact checksum at first observation; any later
	// divergence is a duplicated side effect.
	sums := make(map[string]string)
	distinct := make(map[string]bool)
	// The dispatcher restarts exactly once, at a seeded cycle.
	restartAt := root.Split("dispatcher-restart").Intn(opts.Cycles)

	router := NewRouter()
	accumulate := func(d *Dispatcher) {
		r := d.Report()
		rep.Assignments += r.Assignments
		rep.Reassignments += r.Reassignments
		rep.LeaseExpiries += r.LeaseExpiries
		rep.NodeDeaths += r.NodeDeaths
		rep.IntegrityRejects += r.IntegrityRejects
		rep.Replications += r.Replications
		rep.Divergent += r.Divergent
	}

	for c := 0; c < opts.Cycles; c++ {
		src := root.Split(fmt.Sprintf("cycle%d", c))
		d, store, err := chaosDispatcher(dir)
		if err != nil {
			return rep, fmt.Errorf("cycle %d: dispatcher: %w", c, err)
		}
		router.Swap(Handler(d))
		router.SetDown(false)

		workers := make([]*Worker, opts.Nodes)
		for i := range workers {
			inj := fault.NewProb(src.Split(fmt.Sprintf("inject%d", i)), opts.Rules...)
			w, err := chaosWorker(dir, i, router, inj, src.Split(fmt.Sprintf("seed%d", i)).Int63(), opts.Retry, opts.Capacity)
			if err != nil {
				return rep, fmt.Errorf("cycle %d: worker %d: %w", c, i, err)
			}
			workers[i] = w
		}

		cl := jobs.NewClient("http://dispatcher")
		cl.HTTP = router.Client()
		var ids []string
		for i := 0; i < opts.JobsPerCycle; i++ {
			params, _ := json.Marshal(jobs.SyntheticParams{I: src.Intn(opts.JobSpace)})
			// nosleep:allow the harness is its own root; per-submit safety timeout
			sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
			resp, err := cl.Submit(sctx, jobs.Spec{Kind: jobs.KindSynthetic, Params: params})
			scancel()
			rep.Submitted++
			if err != nil {
				continue // saturation/transport shed the submission
			}
			ids = append(ids, resp.ID)
			distinct[resp.ID] = true
		}

		// Let a seeded prefix of the cycle's jobs settle.
		settle := 0
		if len(ids) > 0 {
			settle = src.Intn(len(ids) + 1)
		}
		if settle > 0 {
			// nosleep:allow the harness is its own root; per-cycle settle deadline
			wctx, wcancel := context.WithTimeout(context.Background(), 30*time.Second)
			_, _ = cl.WaitMany(wctx, ids[:settle], chaosPoll)
			wcancel()
		}

		// Mid-cycle node failure: kill (or cleanly close) a seeded victim
		// while work is in flight, then bring a fresh process up over the
		// same data dir — the restarted node re-registers with its rebuilt
		// in-progress set and the dispatcher reconciles.
		victim := src.Intn(opts.Nodes)
		if src.Bool(0.7) {
			workers[victim].Kill()
			rep.NodeKills++
		} else {
			workers[victim].Close()
			rep.NodeCloses++
		}
		if src.Bool(0.4) {
			// Sometimes the node stays down past the node TTL, so the
			// dispatcher declares it dead and reassigns its whole in-flight
			// set (not just individual lease expiries).
			// nosleep:allow the harness is its own root; bounded death-window wait
			dctx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
			_ = (fault.Wall{}).Sleep(dctx, chaosNodeTTL+3*chaosSweep)
			dcancel()
		}
		w, err := chaosWorker(dir, victim, router,
			fault.NewProb(src.Split("inject-restart"), opts.Rules...),
			src.Split("seed-restart").Int63(), opts.Retry, opts.Capacity)
		if err != nil {
			return rep, fmt.Errorf("cycle %d: restart worker %d: %w", c, victim, err)
		}
		workers[victim] = w

		// Dispatcher crash/recover, once: partition the fleet, drop the
		// dispatcher's volatile state, recover from its store, heal. The
		// workers see transport errors then unknown_node, and re-register.
		if c == restartAt {
			router.SetDown(true)
			accumulate(d)
			d.Close()
			d, store, err = chaosDispatcher(dir)
			if err != nil {
				return rep, fmt.Errorf("cycle %d: dispatcher restart: %w", c, err)
			}
			router.Swap(Handler(d))
			router.SetDown(false)
			rep.DispatcherRestarts++
		}

		// Give the cycle's remaining jobs a bounded chance to land.
		if len(ids) > 0 {
			// nosleep:allow the harness is its own root; per-cycle settle deadline
			wctx, wcancel := context.WithTimeout(context.Background(), 30*time.Second)
			_, _ = cl.WaitMany(wctx, ids, chaosPoll)
			wcancel()
		}

		// Cycle teardown: every worker dies (hard or clean, seeded), then
		// the dispatcher closes. Stores persist; the next cycle's fleet
		// rebuilds from them.
		for _, w := range workers {
			if src.Bool(0.5) {
				w.Kill()
				rep.NodeKills++
			} else {
				w.Close()
				rep.NodeCloses++
			}
		}
		accumulate(d)
		d.Close()
		router.SetDown(true)

		// Cross-cycle exactly-once check: a recorded artifact checksum must
		// never change.
		entries, _, err := store.Scan()
		if err != nil {
			return rep, fmt.Errorf("cycle %d: scan: %w", c, err)
		}
		for _, e := range entries {
			if e.Status.State != jobs.StateDone || e.Status.ResultSum == "" {
				continue
			}
			if prev, ok := sums[e.ID]; ok && prev != e.Status.ResultSum {
				rep.DupEffects = append(rep.DupEffects, e.ID)
			} else if !ok {
				sums[e.ID] = e.Status.ResultSum
			}
		}
	}

	// Fault-free convergence pass: a fresh fleet, no injectors, must land
	// every job the cycles ever accepted as done with an intact artifact.
	d, store, err := chaosDispatcher(dir)
	if err != nil {
		return rep, fmt.Errorf("convergence: dispatcher: %w", err)
	}
	router.Swap(Handler(d))
	router.SetDown(false)
	workers := make([]*Worker, opts.Nodes)
	for i := range workers {
		w, err := chaosWorker(dir, i, router, nil, int64(i), jobs.RetryPolicy{}, opts.Capacity)
		if err != nil {
			return rep, fmt.Errorf("convergence: worker %d: %w", i, err)
		}
		workers[i] = w
	}
	cl := jobs.NewClient("http://dispatcher")
	cl.HTTP = router.Client()
	// nosleep:allow the harness is its own root; convergence-pass deadline
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	entries, _, err := store.Scan()
	if err != nil {
		return rep, fmt.Errorf("convergence: scan: %w", err)
	}
	for _, e := range entries {
		distinct[e.ID] = true
		if e.Status.State == jobs.StateFailed || e.Status.State == jobs.StateCancelled {
			if _, err := cl.Submit(ctx, e.Spec); err != nil {
				return rep, fmt.Errorf("convergence: resubmit %s: %w", e.ID, err)
			}
		}
	}
	all := make([]string, 0, len(distinct))
	for id := range distinct {
		all = append(all, id)
	}
	rep.DistinctJobs = len(distinct)
	results, err := cl.WaitMany(ctx, all, chaosPoll)
	if err != nil {
		return rep, fmt.Errorf("convergence: wait: %w", err)
	}
	for _, id := range all {
		r, ok := results[id]
		if !ok || r.State != jobs.StateDone {
			rep.Lost = append(rep.Lost, id)
			continue
		}
		if prev, ok := sums[id]; ok && prev != r.ResultSum {
			rep.DupEffects = append(rep.DupEffects, id)
		}
	}
	for _, w := range workers {
		w.Close()
	}
	accumulate(d)
	d.Close()

	rep.DispatcherIntegrity, err = store.VerifyArtifacts()
	if err != nil {
		return rep, err
	}
	workersOK := true
	for i := 0; i < opts.Nodes; i++ {
		ws, err := jobs.Open(filepath.Join(dir, fmt.Sprintf("node%d", i)))
		if err != nil {
			return rep, err
		}
		ir, err := ws.VerifyArtifacts()
		if err != nil {
			return rep, err
		}
		rep.WorkerIntegrity = append(rep.WorkerIntegrity, ir)
		if !ir.OK() {
			workersOK = false
		}
	}
	rep.Converged = len(rep.Lost) == 0 && len(rep.DupEffects) == 0 &&
		rep.Divergent == 0 && rep.DispatcherIntegrity.OK() && workersOK
	return rep, nil
}
