// Package objects implements the shared objects of Section 5 of the paper -
// counters, stacks and queues - on top of the simulated TSO memory, together
// with the reduction of Lemma 9: a one-time mutual-exclusion lock built from
// a limited-use counter (Algorithm 1), where each passage invokes exactly
// one operation on the underlying object. The reduction is what transfers
// the fence-complexity lower bound from locks to these objects.
package objects

import (
	"fmt"

	"priceadaptive/internal/mutex"
	"priceadaptive/internal/tso"
)

// Counter is a fetch&increment counter: FetchIncrement atomically increments
// the counter and returns its previous value.
type Counter interface {
	// Name identifies the implementation.
	Name() string
	// FetchIncrement performs the operation on behalf of p.
	FetchIncrement(p *tso.Proc) uint64
}

// Queue is a FIFO queue of uint64 values.
type Queue interface {
	// Name identifies the implementation.
	Name() string
	// Enqueue appends v.
	Enqueue(p *tso.Proc, v uint64)
	// Dequeue removes and returns the head, or ok=false if the queue is
	// empty.
	Dequeue(p *tso.Proc) (v uint64, ok bool)
}

// Stack is a LIFO stack of uint64 values.
type Stack interface {
	// Name identifies the implementation.
	Name() string
	// Push appends v.
	Push(p *tso.Proc, v uint64)
	// Pop removes and returns the top, or ok=false if the stack is empty.
	Pop(p *tso.Proc) (v uint64, ok bool)
}

// casCounter is a counter implemented directly with the serializing CAS
// primitive (retry loop). Under contention k an operation may retry Θ(k)
// times, each retry costing a fence - the CAS analogue of the paper's
// adaptivity/fence tradeoff.
type casCounter struct {
	v *tso.Var
}

// NewCASCounter allocates a CAS-based counter.
func NewCASCounter(mem *tso.Memory) Counter {
	return &casCounter{v: mem.NewVar("counter.cas")}
}

// Name implements Counter.
func (c *casCounter) Name() string { return "cas-counter" }

// FetchIncrement implements Counter.
func (c *casCounter) FetchIncrement(p *tso.Proc) uint64 {
	for {
		cur := p.Read(c.v)
		if _, ok := p.CAS(c.v, cur, cur+1); ok {
			return cur
		}
	}
}

// lockedCounter is a counter protected by any mutual-exclusion lock: the
// construction the paper's Section 5 notes gives O(log N) RMRs and O(1)
// fences per operation when instantiated with the algorithm of [6] - or,
// with an adaptive lock, inherits the adaptive lock's fence growth.
type lockedCounter struct {
	name string
	lock mutex.Lock
	v    *tso.Var
}

// NewLockedCounter allocates a counter protected by a lock built with f.
func NewLockedCounter(mem *tso.Memory, n int, f mutex.Factory) (Counter, error) {
	l, err := f(mem, n)
	if err != nil {
		return nil, fmt.Errorf("objects: counter lock: %w", err)
	}
	return &lockedCounter{
		name: "locked-counter(" + l.Name() + ")",
		lock: l,
		v:    mem.NewVar("counter.value"),
	}, nil
}

// Name implements Counter.
func (c *lockedCounter) Name() string { return c.name }

// FetchIncrement implements Counter.
func (c *lockedCounter) FetchIncrement(p *tso.Proc) uint64 {
	c.lock.Lock(p)
	x := p.Read(c.v)
	p.Write(c.v, x+1)
	c.lock.Unlock(p)
	return x
}

// lockedQueue is a bounded FIFO queue protected by a lock.
type lockedQueue struct {
	name string
	lock mutex.Lock
	head *tso.Var
	tail *tso.Var
	buf  []*tso.Var
}

// NewLockedQueue allocates a lock-protected queue with the given capacity.
func NewLockedQueue(mem *tso.Memory, n, capacity int, f mutex.Factory) (Queue, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("objects: queue capacity must be positive, got %d", capacity)
	}
	l, err := f(mem, n)
	if err != nil {
		return nil, fmt.Errorf("objects: queue lock: %w", err)
	}
	return &lockedQueue{
		name: "locked-queue(" + l.Name() + ")",
		lock: l,
		head: mem.NewVar("queue.head"),
		tail: mem.NewVar("queue.tail"),
		buf:  mem.NewArray("queue.buf", capacity),
	}, nil
}

// NewQueueInit allocates a queue pre-filled with the values init (init[0] at
// the head), as needed by the Lemma 9 counter construction.
func NewQueueInit(mem *tso.Memory, n, capacity int, init []uint64, f mutex.Factory) (Queue, error) {
	if len(init) > capacity {
		return nil, fmt.Errorf("objects: %d initial values exceed capacity %d", len(init), capacity)
	}
	l, err := f(mem, n)
	if err != nil {
		return nil, fmt.Errorf("objects: queue lock: %w", err)
	}
	return &lockedQueue{
		name: "locked-queue(" + l.Name() + ")",
		lock: l,
		head: mem.NewVar("queue.head"),
		tail: mem.NewVarInit("queue.tail", uint64(len(init))),
		buf:  mem.NewArrayInit("queue.buf", capacity, init),
	}, nil
}

// Name implements Queue.
func (q *lockedQueue) Name() string { return q.name }

// Enqueue implements Queue. Enqueueing into a full queue panics: the bounded
// buffer is an implementation artifact and callers size it to their
// workload.
func (q *lockedQueue) Enqueue(p *tso.Proc, v uint64) {
	q.lock.Lock(p)
	t := p.Read(q.tail)
	if int(t) >= len(q.buf) {
		q.lock.Unlock(p)
		panic(fmt.Sprintf("objects: queue overflow at %d", t))
	}
	p.Write(q.buf[t], v)
	p.Write(q.tail, t+1)
	q.lock.Unlock(p)
}

// Dequeue implements Queue.
func (q *lockedQueue) Dequeue(p *tso.Proc) (uint64, bool) {
	q.lock.Lock(p)
	h := p.Read(q.head)
	t := p.Read(q.tail)
	if h == t {
		q.lock.Unlock(p)
		return 0, false
	}
	v := p.Read(q.buf[h])
	p.Write(q.head, h+1)
	q.lock.Unlock(p)
	return v, true
}

// lockedStack is a bounded LIFO stack protected by a lock.
type lockedStack struct {
	name string
	lock mutex.Lock
	top  *tso.Var
	buf  []*tso.Var
}

// NewLockedStack allocates a lock-protected stack with the given capacity.
func NewLockedStack(mem *tso.Memory, n, capacity int, f mutex.Factory) (Stack, error) {
	return newStack(mem, n, capacity, nil, f)
}

// NewStackInit allocates a stack pre-filled with init (init[0] at the
// bottom, last element on top).
func NewStackInit(mem *tso.Memory, n, capacity int, init []uint64, f mutex.Factory) (Stack, error) {
	return newStack(mem, n, capacity, init, f)
}

func newStack(mem *tso.Memory, n, capacity int, init []uint64, f mutex.Factory) (Stack, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("objects: stack capacity must be positive, got %d", capacity)
	}
	if len(init) > capacity {
		return nil, fmt.Errorf("objects: %d initial values exceed capacity %d", len(init), capacity)
	}
	l, err := f(mem, n)
	if err != nil {
		return nil, fmt.Errorf("objects: stack lock: %w", err)
	}
	return &lockedStack{
		name: "locked-stack(" + l.Name() + ")",
		lock: l,
		top:  mem.NewVarInit("stack.top", uint64(len(init))),
		buf:  mem.NewArrayInit("stack.buf", capacity, init),
	}, nil
}

// Name implements Stack.
func (s *lockedStack) Name() string { return s.name }

// Push implements Stack. Pushing onto a full stack panics.
func (s *lockedStack) Push(p *tso.Proc, v uint64) {
	s.lock.Lock(p)
	t := p.Read(s.top)
	if int(t) >= len(s.buf) {
		s.lock.Unlock(p)
		panic(fmt.Sprintf("objects: stack overflow at %d", t))
	}
	p.Write(s.buf[t], v)
	p.Write(s.top, t+1)
	s.lock.Unlock(p)
}

// Pop implements Stack.
func (s *lockedStack) Pop(p *tso.Proc) (uint64, bool) {
	s.lock.Lock(p)
	t := p.Read(s.top)
	if t == 0 {
		s.lock.Unlock(p)
		return 0, false
	}
	v := p.Read(s.buf[t-1])
	p.Write(s.top, t-1)
	s.lock.Unlock(p)
	return v, true
}

// counterFromQueue is the Lemma 9 construction of an m-limited-use counter
// from a queue initialized to <0, 1, ..., m>: fetch&increment is a single
// dequeue.
type counterFromQueue struct {
	q Queue
}

// NewCounterFromQueue builds an m-limited-use counter from a pre-initialized
// queue (see NewQueueInit with init 0..m).
func NewCounterFromQueue(q Queue) Counter { return &counterFromQueue{q: q} }

// Name implements Counter.
func (c *counterFromQueue) Name() string { return "counter-from-queue" }

// FetchIncrement implements Counter.
func (c *counterFromQueue) FetchIncrement(p *tso.Proc) uint64 {
	v, ok := c.q.Dequeue(p)
	if !ok {
		panic("objects: limited-use counter exhausted (queue empty)")
	}
	return v
}

// counterFromStack is the Lemma 9 construction of an m-limited-use counter
// from a stack initialized to <m, ..., 1, 0> (0 on top): fetch&increment is
// a single pop.
type counterFromStack struct {
	s Stack
}

// NewCounterFromStack builds an m-limited-use counter from a pre-initialized
// stack (see NewStackInit with init m..0).
func NewCounterFromStack(s Stack) Counter { return &counterFromStack{s: s} }

// Name implements Counter.
func (c *counterFromStack) Name() string { return "counter-from-stack" }

// FetchIncrement implements Counter.
func (c *counterFromStack) FetchIncrement(p *tso.Proc) uint64 {
	v, ok := c.s.Pop(p)
	if !ok {
		panic("objects: limited-use counter exhausted (stack empty)")
	}
	return v
}

// CounterRange returns the initial contents for a queue-backed limited-use
// counter serving m operations: 0, 1, ..., m.
func CounterRange(m int) []uint64 {
	out := make([]uint64, m+1)
	for i := range out {
		out[i] = uint64(i)
	}
	return out
}

// CounterRangeReversed returns the initial contents for a stack-backed
// limited-use counter: m, ..., 1, 0 (so 0 is popped first).
func CounterRangeReversed(m int) []uint64 {
	out := make([]uint64, m+1)
	for i := range out {
		out[i] = uint64(m - i)
	}
	return out
}
