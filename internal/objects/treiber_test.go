package objects

import (
	"fmt"
	"sort"
	"testing"

	"priceadaptive/internal/rmr"
	"priceadaptive/internal/tso"
)

func TestTreiberSequentialLIFO(t *testing.T) {
	build := func(sim *tso.Simulator) (tso.Program, error) {
		s, err := NewTreiberStack(sim.Memory(), 1, 8)
		if err != nil {
			return nil, err
		}
		return func(p *tso.Proc) {
			if _, ok := s.Pop(p); ok {
				panic("pop of empty treiber succeeded")
			}
			for i := uint64(1); i <= 4; i++ {
				s.Push(p, i*10)
			}
			for want := uint64(4); want >= 1; want-- {
				if v, ok := s.Pop(p); !ok || v != want*10 {
					panic(fmt.Sprintf("pop = %d,%v want %d", v, ok, want*10))
				}
			}
			if _, ok := s.Pop(p); ok {
				panic("stack should be empty")
			}
			p.CS()
		}, nil
	}
	runProgram(t, tso.Config{N: 1}, build, tso.Sequential{})
}

func TestTreiberConcurrentConservation(t *testing.T) {
	// n processes each push `per` distinct values and pop `per` times;
	// the multiset of popped values must be exactly the pushed ones (each
	// process pops after the barrier of its own pushes; values conserved).
	const n, per = 4, 3
	popped := make([][]uint64, n)
	build := func(sim *tso.Simulator) (tso.Program, error) {
		s, err := NewTreiberStack(sim.Memory(), n, per)
		if err != nil {
			return nil, err
		}
		return func(p *tso.Proc) {
			base := uint64(p.ID()) * 100
			for i := uint64(0); i < per; i++ {
				s.Push(p, base+i+1)
			}
			for len(popped[p.ID()]) < per {
				if v, ok := s.Pop(p); ok {
					popped[p.ID()] = append(popped[p.ID()], v)
				}
			}
			p.CS()
		}, nil
	}
	for seed := int64(1); seed <= 6; seed++ {
		for i := range popped {
			popped[i] = nil
		}
		runProgram(t, tso.Config{N: n, AllowConcurrentCS: true}, build, tso.NewRandom(seed, 0.3))
		var all []uint64
		for _, o := range popped {
			all = append(all, o...)
		}
		if len(all) != n*per {
			t.Fatalf("seed %d: popped %d values", seed, len(all))
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		for i := 1; i < len(all); i++ {
			if all[i] == all[i-1] {
				t.Fatalf("seed %d: duplicate value %d popped", seed, all[i])
			}
		}
	}
}

func TestTreiberAsLimitedUseCounter(t *testing.T) {
	const n = 6
	out := make([]uint64, n)
	build := func(sim *tso.Simulator) (tso.Program, error) {
		st, err := NewTreiberInit(sim.Memory(), n, 1, CounterRangeReversed(n))
		if err != nil {
			return nil, err
		}
		c := NewCounterFromStack(st)
		return func(p *tso.Proc) {
			out[p.ID()] = c.FetchIncrement(p)
			p.CS()
		}, nil
	}
	runProgram(t, tso.Config{N: n, AllowConcurrentCS: true}, build, tso.NewRandom(9, 0.3))
	checkCounterOutputs(t, out)
}

func TestOneTimeFromTreiberExclusion(t *testing.T) {
	const n = 5
	for seed := int64(1); seed <= 8; seed++ {
		build := func(sim *tso.Simulator) (tso.Program, error) {
			l, err := OneTimeFromTreiber(sim.Memory(), n)
			if err != nil {
				return nil, err
			}
			return func(p *tso.Proc) {
				l.Lock(p)
				p.CS()
				l.Unlock(p)
			}, nil
		}
		runProgram(t, tso.Config{N: n}, build, tso.NewRandom(seed, 0.3))
	}
}

func TestTreiberFenceComplexityIsAdaptive(t *testing.T) {
	// Fences per pop = 1 + CAS retries: grows with contention, constant
	// without - the Corollary 1 tradeoff on a lock-free object.
	fences := func(n int) int {
		sim, err := tso.NewSimulator(tso.Config{N: n, AllowConcurrentCS: true}, func(s *tso.Simulator) (tso.Program, error) {
			st, err := NewTreiberInit(s.Memory(), n, 1, CounterRangeReversed(n))
			if err != nil {
				return nil, err
			}
			return func(p *tso.Proc) {
				st.Pop(p)
				p.CS()
			}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		defer sim.Kill()
		acc := rmr.Attach(sim, rmr.ModelCCWriteBack)
		// Lock-step scheduling maximizes CAS collisions.
		if _, err := tso.Run(sim, tso.NewRoundRobin(), 10_000_000); err != nil {
			t.Fatal(err)
		}
		return acc.Summarize().MaxFences
	}
	f1, f8 := fences(1), fences(8)
	if f1 != 1 {
		t.Errorf("solo pop fences = %d, want 1", f1)
	}
	if f8 <= f1 {
		t.Errorf("contended pop fences = %d, want > %d", f8, f1)
	}
}

func TestTreiberPoolExhaustionPanics(t *testing.T) {
	build := func(sim *tso.Simulator) (tso.Program, error) {
		s, err := NewTreiberStack(sim.Memory(), 1, 1)
		if err != nil {
			return nil, err
		}
		return func(p *tso.Proc) {
			s.Push(p, 1)
			s.Push(p, 2) // exceeds opsPerProc=1
			p.CS()
		}, nil
	}
	sim, err := tso.NewSimulator(tso.Config{N: 1}, build)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Kill()
	_, _ = tso.Run(sim, tso.Sequential{}, 100000)
	if _, ok := sim.ProgramPanic(0); !ok {
		t.Fatal("pool exhaustion must panic")
	}
}

func TestTreiberValidation(t *testing.T) {
	sim, err := tso.NewSimulator(tso.Config{N: 1}, func(s *tso.Simulator) (tso.Program, error) {
		_, err := NewTreiberStack(s.Memory(), 1, 0)
		return nil, err
	})
	if err == nil {
		sim.Kill()
		t.Fatal("opsPerProc=0 must be rejected")
	}
}
