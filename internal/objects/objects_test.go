package objects

import (
	"fmt"
	"sort"
	"testing"

	"priceadaptive/internal/mutex"
	"priceadaptive/internal/rmr"
	"priceadaptive/internal/tso"
)

// runProgram builds a simulator around prog and runs it to completion under
// the scheduler, failing the test on any error or exclusion violation.
func runProgram(t *testing.T, cfg tso.Config, build tso.Build, sched tso.Scheduler) *tso.Simulator {
	t.Helper()
	sim, err := tso.NewSimulator(cfg, build)
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	t.Cleanup(sim.Kill)
	res, err := tso.Run(sim, sched, 20_000_000)
	if err != nil {
		for i := 0; i < cfg.N; i++ {
			if msg, ok := sim.ProgramPanic(tso.ProcID(i)); ok {
				t.Fatalf("p%d panicked: %s", i, msg)
			}
		}
		t.Fatalf("Run: %v", err)
	}
	if !res.Completed {
		t.Fatal("run did not complete")
	}
	if res.Violation != nil {
		t.Fatalf("exclusion violated: %v", res.Violation)
	}
	return sim
}

// checkCounterOutputs asserts the fetch&increment results are exactly
// 0..len-1 in some order (atomicity of the counter).
func checkCounterOutputs(t *testing.T, got []uint64) {
	t.Helper()
	sorted := append([]uint64(nil), got...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, v := range sorted {
		if v != uint64(i) {
			t.Fatalf("counter outputs not a permutation of 0..%d: %v", len(got)-1, got)
		}
	}
}

func TestCASCounterAtomicity(t *testing.T) {
	const n, per = 4, 5
	out := make([][]uint64, n)
	build := func(sim *tso.Simulator) (tso.Program, error) {
		c := NewCASCounter(sim.Memory())
		return func(p *tso.Proc) {
			out[p.ID()] = append(out[p.ID()], c.FetchIncrement(p))
			p.CS()
		}, nil
	}
	for seed := int64(1); seed <= 5; seed++ {
		for i := range out {
			out[i] = nil
		}
		runProgram(t, tso.Config{N: n, Passages: per, AllowConcurrentCS: true}, build, tso.NewRandom(seed, 0.3))
		var all []uint64
		for _, o := range out {
			all = append(all, o...)
		}
		if len(all) != n*per {
			t.Fatalf("seed %d: %d outputs, want %d", seed, len(all), n*per)
		}
		checkCounterOutputs(t, all)
	}
}

func TestLockedCounterAtomicity(t *testing.T) {
	const n, per = 4, 3
	out := make([][]uint64, n)
	build := func(sim *tso.Simulator) (tso.Program, error) {
		c, err := NewLockedCounter(sim.Memory(), n, mutex.NewBakery)
		if err != nil {
			return nil, err
		}
		return func(p *tso.Proc) {
			out[p.ID()] = append(out[p.ID()], c.FetchIncrement(p))
			p.CS()
		}, nil
	}
	for seed := int64(1); seed <= 5; seed++ {
		for i := range out {
			out[i] = nil
		}
		runProgram(t, tso.Config{N: n, Passages: per, AllowConcurrentCS: true}, build, tso.NewRandom(seed, 0.25))
		var all []uint64
		for _, o := range out {
			all = append(all, o...)
		}
		checkCounterOutputs(t, all)
	}
}

func TestQueueFIFOSingleProducerConsumer(t *testing.T) {
	const items = 8
	var got []uint64
	build := func(sim *tso.Simulator) (tso.Program, error) {
		q, err := NewLockedQueue(sim.Memory(), 2, items, mutex.NewTAS)
		if err != nil {
			return nil, err
		}
		return func(p *tso.Proc) {
			if p.ID() == 0 {
				for i := 0; i < items; i++ {
					q.Enqueue(p, uint64(100+i))
				}
			} else {
				for len(got) < items {
					if v, ok := q.Dequeue(p); ok {
						got = append(got, v)
					}
				}
			}
			p.CS()
		}, nil
	}
	runProgram(t, tso.Config{N: 2, AllowConcurrentCS: true}, build, tso.NewRandom(7, 0.2))
	if len(got) != items {
		t.Fatalf("dequeued %d items, want %d", len(got), items)
	}
	for i, v := range got {
		if v != uint64(100+i) {
			t.Fatalf("FIFO order broken: %v", got)
		}
	}
}

func TestQueueEmptyDequeue(t *testing.T) {
	build := func(sim *tso.Simulator) (tso.Program, error) {
		q, err := NewLockedQueue(sim.Memory(), 1, 4, mutex.NewTAS)
		if err != nil {
			return nil, err
		}
		return func(p *tso.Proc) {
			if _, ok := q.Dequeue(p); ok {
				panic("dequeue of empty queue succeeded")
			}
			q.Enqueue(p, 42)
			if v, ok := q.Dequeue(p); !ok || v != 42 {
				panic(fmt.Sprintf("dequeue = %d,%v", v, ok))
			}
			if _, ok := q.Dequeue(p); ok {
				panic("queue should be empty again")
			}
			p.CS()
		}, nil
	}
	runProgram(t, tso.Config{N: 1}, build, tso.Sequential{})
}

func TestStackLIFO(t *testing.T) {
	build := func(sim *tso.Simulator) (tso.Program, error) {
		s, err := NewLockedStack(sim.Memory(), 1, 8, mutex.NewTAS)
		if err != nil {
			return nil, err
		}
		return func(p *tso.Proc) {
			if _, ok := s.Pop(p); ok {
				panic("pop of empty stack succeeded")
			}
			for i := uint64(1); i <= 3; i++ {
				s.Push(p, i)
			}
			for want := uint64(3); want >= 1; want-- {
				if v, ok := s.Pop(p); !ok || v != want {
					panic(fmt.Sprintf("pop = %d,%v, want %d", v, ok, want))
				}
			}
			p.CS()
		}, nil
	}
	runProgram(t, tso.Config{N: 1}, build, tso.Sequential{})
}

func TestCounterFromQueueAndStack(t *testing.T) {
	const n = 6
	for _, kind := range []string{"queue", "stack"} {
		t.Run(kind, func(t *testing.T) {
			out := make([]uint64, n)
			build := func(sim *tso.Simulator) (tso.Program, error) {
				var c Counter
				switch kind {
				case "queue":
					q, err := NewQueueInit(sim.Memory(), n, n+1, CounterRange(n), mutex.NewTAS)
					if err != nil {
						return nil, err
					}
					c = NewCounterFromQueue(q)
				case "stack":
					s, err := NewStackInit(sim.Memory(), n, n+1, CounterRangeReversed(n), mutex.NewTAS)
					if err != nil {
						return nil, err
					}
					c = NewCounterFromStack(s)
				}
				return func(p *tso.Proc) {
					out[p.ID()] = c.FetchIncrement(p)
					p.CS()
				}, nil
			}
			runProgram(t, tso.Config{N: n, AllowConcurrentCS: true}, build, tso.NewRandom(3, 0.25))
			checkCounterOutputs(t, out)
		})
	}
}

func TestCounterRanges(t *testing.T) {
	r := CounterRange(3)
	if len(r) != 4 || r[0] != 0 || r[3] != 3 {
		t.Errorf("CounterRange = %v", r)
	}
	rr := CounterRangeReversed(3)
	if len(rr) != 4 || rr[0] != 3 || rr[3] != 0 {
		t.Errorf("CounterRangeReversed = %v", rr)
	}
}

// oneTimeBuild builds the one-time mutex over the given counter flavor.
func oneTimeBuild(t *testing.T, flavor string, n int) tso.Build {
	t.Helper()
	return func(sim *tso.Simulator) (tso.Program, error) {
		var l mutex.Lock
		var err error
		switch flavor {
		case "cas":
			l = NewOneTimeMutex(sim.Memory(), n, NewCASCounter(sim.Memory()))
		case "locked":
			var c Counter
			c, err = NewLockedCounter(sim.Memory(), n, mutex.NewBakery)
			if err == nil {
				l = NewOneTimeMutex(sim.Memory(), n, c)
			}
		case "queue":
			l, err = OneTimeFromQueue(sim.Memory(), n, mutex.NewTAS)
		case "stack":
			l, err = OneTimeFromStack(sim.Memory(), n, mutex.NewTAS)
		default:
			err = fmt.Errorf("unknown flavor %q", flavor)
		}
		if err != nil {
			return nil, err
		}
		return func(p *tso.Proc) {
			l.Lock(p)
			p.CS()
			l.Unlock(p)
		}, nil
	}
}

func TestOneTimeMutexExclusionAllFlavors(t *testing.T) {
	const n = 5
	for _, flavor := range []string{"cas", "locked", "queue", "stack"} {
		for seed := int64(1); seed <= 6; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", flavor, seed), func(t *testing.T) {
				runProgram(t, tso.Config{N: n}, oneTimeBuild(t, flavor, n), tso.NewRandom(seed, 0.3))
			})
		}
	}
}

func TestOneTimeMutexRoundRobin(t *testing.T) {
	for _, flavor := range []string{"cas", "locked", "queue", "stack"} {
		t.Run(flavor, func(t *testing.T) {
			runProgram(t, tso.Config{N: 6}, oneTimeBuild(t, flavor, 6), tso.NewRoundRobin())
		})
	}
}

func TestLemma9FenceComplexityTransfer(t *testing.T) {
	// Lemma 9: the one-time mutex adds only O(1) fences on top of a single
	// counter operation. Measure the bakery-protected counter's operation
	// cost (the bakery lock uses 3 fences) and assert the one-time lock's
	// per-passage fence count is within the constant additive bound.
	const n = 6
	sim, err := tso.NewSimulator(tso.Config{N: n}, oneTimeBuild(t, "locked", n))
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Kill()
	acc := rmr.Attach(sim, rmr.ModelCCWriteBack)
	res, err := tso.Run(sim, tso.NewRoundRobin(), 20_000_000)
	if err != nil || !res.Completed {
		t.Fatalf("run: %v", err)
	}
	s := acc.Summarize()
	// Counter op via bakery: 3 fences. Algorithm 1 adds: 1 after waiting
	// write, 1 after release write, possibly 1 after spin signal.
	const counterFences = 3
	if s.MaxFences > counterFences+3 {
		t.Errorf("one-time mutex fences = %d, want <= counter(%d) + 3", s.MaxFences, counterFences)
	}
	if s.MaxFences < counterFences+1 {
		t.Errorf("one-time mutex fences = %d, suspiciously low", s.MaxFences)
	}
}

func TestQueueOverflowPanics(t *testing.T) {
	build := func(sim *tso.Simulator) (tso.Program, error) {
		q, err := NewLockedQueue(sim.Memory(), 1, 1, mutex.NewTAS)
		if err != nil {
			return nil, err
		}
		return func(p *tso.Proc) {
			q.Enqueue(p, 1)
			q.Enqueue(p, 2) // overflow
			p.CS()
		}, nil
	}
	sim, err := tso.NewSimulator(tso.Config{N: 1}, build)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Kill()
	_, _ = tso.Run(sim, tso.Sequential{}, 100000)
	if _, ok := sim.ProgramPanic(0); !ok {
		t.Fatal("queue overflow must panic")
	}
}

func TestConstructorValidation(t *testing.T) {
	sim, err := tso.NewSimulator(tso.Config{N: 2}, func(s *tso.Simulator) (tso.Program, error) {
		if _, err := NewLockedQueue(s.Memory(), 2, 0, mutex.NewTAS); err == nil {
			return nil, fmt.Errorf("zero-capacity queue accepted")
		}
		if _, err := NewLockedStack(s.Memory(), 2, 0, mutex.NewTAS); err == nil {
			return nil, fmt.Errorf("zero-capacity stack accepted")
		}
		if _, err := NewQueueInit(s.Memory(), 2, 2, []uint64{1, 2, 3}, mutex.NewTAS); err == nil {
			return nil, fmt.Errorf("oversized init accepted")
		}
		if _, err := NewStackInit(s.Memory(), 2, 2, []uint64{1, 2, 3}, mutex.NewTAS); err == nil {
			return nil, fmt.Errorf("oversized stack init accepted")
		}
		return func(p *tso.Proc) { p.CS() }, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Kill()
}

func TestObjectNames(t *testing.T) {
	sim, err := tso.NewSimulator(tso.Config{N: 2}, func(s *tso.Simulator) (tso.Program, error) {
		mem := s.Memory()
		c := NewCASCounter(mem)
		if c.Name() != "cas-counter" {
			return nil, fmt.Errorf("cas counter name %q", c.Name())
		}
		lc, err := NewLockedCounter(mem, 2, mutex.NewTAS)
		if err != nil {
			return nil, err
		}
		if lc.Name() != "locked-counter(tas)" {
			return nil, fmt.Errorf("locked counter name %q", lc.Name())
		}
		ot := NewOneTimeMutex(mem, 2, c)
		if ot.Name() != "onetime(cas-counter)" {
			return nil, fmt.Errorf("onetime name %q", ot.Name())
		}
		if os, ok := ot.(mutex.OneShot); !ok || !os.OneShot() {
			return nil, fmt.Errorf("onetime must be one-shot")
		}
		return func(p *tso.Proc) { p.CS() }, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Kill()
}
