package objects

import (
	"math/rand"
	"testing"
	"testing/quick"

	"priceadaptive/internal/mutex"
	"priceadaptive/internal/tso"
)

// TestQuickQueueMatchesModel runs random single-process operation sequences
// against both queue implementations and a plain Go slice model; all three
// must agree on every result.
func TestQuickQueueMatchesModel(t *testing.T) {
	f := func(seed int64) bool {
		const ops = 25
		rng := rand.New(rand.NewSource(seed))
		opsSeq := make([]int, ops)
		vals := make([]uint64, ops)
		for i := range opsSeq {
			opsSeq[i] = rng.Intn(2)
			vals[i] = uint64(rng.Intn(900)) + 1
		}
		for _, kind := range []string{"locked", "ms"} {
			kind := kind
			ok := true
			build := func(sim *tso.Simulator) (tso.Program, error) {
				var q Queue
				var err error
				switch kind {
				case "locked":
					q, err = NewLockedQueue(sim.Memory(), 1, ops+1, mutex.NewTAS)
				case "ms":
					q, err = NewMSQueue(sim.Memory(), 1, ops+1)
				}
				if err != nil {
					return nil, err
				}
				return func(p *tso.Proc) {
					var model []uint64
					for i := 0; i < ops; i++ {
						if opsSeq[i] == 0 {
							q.Enqueue(p, vals[i])
							model = append(model, vals[i])
						} else {
							got, gotOK := q.Dequeue(p)
							wantOK := len(model) > 0
							var want uint64
							if wantOK {
								want = model[0]
								model = model[1:]
							}
							if gotOK != wantOK || (gotOK && got != want) {
								ok = false
							}
						}
					}
					p.CS()
				}, nil
			}
			sim, err := tso.NewSimulator(tso.Config{N: 1}, build)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := tso.Run(sim, tso.NewRandom(seed, 0.2), 1_000_000); err != nil {
				sim.Kill()
				t.Fatal(err)
			}
			sim.Kill()
			if !ok {
				t.Logf("seed %d kind %s diverged from model", seed, kind)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickStackMatchesModel does the same for both stack implementations.
func TestQuickStackMatchesModel(t *testing.T) {
	f := func(seed int64) bool {
		const ops = 25
		rng := rand.New(rand.NewSource(seed))
		opsSeq := make([]int, ops)
		vals := make([]uint64, ops)
		for i := range opsSeq {
			opsSeq[i] = rng.Intn(2)
			vals[i] = uint64(rng.Intn(900)) + 1
		}
		for _, kind := range []string{"locked", "treiber"} {
			kind := kind
			ok := true
			build := func(sim *tso.Simulator) (tso.Program, error) {
				var s Stack
				var err error
				switch kind {
				case "locked":
					s, err = NewLockedStack(sim.Memory(), 1, ops+1, mutex.NewTAS)
				case "treiber":
					s, err = NewTreiberStack(sim.Memory(), 1, ops+1)
				}
				if err != nil {
					return nil, err
				}
				return func(p *tso.Proc) {
					var model []uint64
					for i := 0; i < ops; i++ {
						if opsSeq[i] == 0 {
							s.Push(p, vals[i])
							model = append(model, vals[i])
						} else {
							got, gotOK := s.Pop(p)
							wantOK := len(model) > 0
							var want uint64
							if wantOK {
								want = model[len(model)-1]
								model = model[:len(model)-1]
							}
							if gotOK != wantOK || (gotOK && got != want) {
								ok = false
							}
						}
					}
					p.CS()
				}, nil
			}
			sim, err := tso.NewSimulator(tso.Config{N: 1}, build)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := tso.Run(sim, tso.NewRandom(seed, 0.2), 1_000_000); err != nil {
				sim.Kill()
				t.Fatal(err)
			}
			sim.Kill()
			if !ok {
				t.Logf("seed %d kind %s diverged from model", seed, kind)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
