package objects

import (
	"priceadaptive/internal/mutex"
	"priceadaptive/internal/tso"
)

// oneTimeMutex is Algorithm 1 of the paper: an N-process one-time
// mutual-exclusion lock built from an N-limited-use counter. Each passage
// invokes exactly one fetch&increment on the counter and otherwise uses O(1)
// reads, writes and fences, which is what makes Lemma 9 go through: the
// lock's RMR and fence complexities equal those of the counter operation up
// to a constant additive term, so any fence-complexity lower bound for
// one-time mutual exclusion transfers to counters (and, via the
// queue/stack-backed counters, to queues and stacks).
//
// Following the paper, every write is followed by a fence.
type oneTimeMutex struct {
	counter Counter
	release []*tso.Var
	waiting []*tso.Var // 0 = ⊥, otherwise process ID + 1
	spin    []*tso.Var // spin[p] is local to p in the DSM model
	// ticket[p] is the counter value drawn by p, stored Go-side between
	// Lock and Unlock (touched only by p's goroutine).
	ticket []uint64
	n      int
}

var _ mutex.Lock = (*oneTimeMutex)(nil)
var _ mutex.OneShot = (*oneTimeMutex)(nil)

// NewOneTimeMutex builds Algorithm 1 over the given counter. The counter
// must support at least n fetch&increment operations.
func NewOneTimeMutex(mem *tso.Memory, n int, c Counter) mutex.Lock {
	return &oneTimeMutex{
		counter: c,
		release: mem.NewArrayInit("onetime.release", n+1, []uint64{1}),
		waiting: mem.NewArray("onetime.waiting", n+1),
		spin:    mem.NewOwnedArray("onetime.spin", n),
		ticket:  make([]uint64, n),
		n:       n,
	}
}

// Name implements mutex.Lock.
func (l *oneTimeMutex) Name() string { return "onetime(" + l.counter.Name() + ")" }

// OneShot implements mutex.OneShot.
func (l *oneTimeMutex) OneShot() bool { return true }

// Lock implements mutex.Lock (lines 1-4 of Algorithm 1).
func (l *oneTimeMutex) Lock(p *tso.Proc) {
	v := l.counter.FetchIncrement(p)
	l.ticket[p.ID()] = v
	p.Write(l.waiting[v], uint64(p.ID())+1)
	p.Fence()
	if p.Read(l.release[v]) == 0 {
		for p.Read(l.spin[p.ID()]) == 0 {
		}
	}
}

// Unlock implements mutex.Lock (lines 5-8 of Algorithm 1).
func (l *oneTimeMutex) Unlock(p *tso.Proc) {
	v := l.ticket[p.ID()]
	p.Write(l.release[v+1], 1)
	p.Fence()
	q := p.Read(l.waiting[v+1])
	if q != 0 {
		p.Write(l.spin[q-1], 1)
		p.Fence()
	}
}

// OneTimeFromQueue builds the full Lemma 9 chain for n processes: a
// lock-protected queue initialized to <0..n>, the limited-use counter over
// it, and Algorithm 1 on top. innerLock builds the mutex protecting the
// queue.
func OneTimeFromQueue(mem *tso.Memory, n int, innerLock mutex.Factory) (mutex.Lock, error) {
	q, err := NewQueueInit(mem, n, n+1, CounterRange(n), innerLock)
	if err != nil {
		return nil, err
	}
	return NewOneTimeMutex(mem, n, NewCounterFromQueue(q)), nil
}

// OneTimeFromStack is OneTimeFromQueue with a stack-backed counter.
func OneTimeFromStack(mem *tso.Memory, n int, innerLock mutex.Factory) (mutex.Lock, error) {
	s, err := NewStackInit(mem, n, n+1, CounterRangeReversed(n), innerLock)
	if err != nil {
		return nil, err
	}
	return NewOneTimeMutex(mem, n, NewCounterFromStack(s)), nil
}
