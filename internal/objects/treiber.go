package objects

import (
	"fmt"

	"priceadaptive/internal/mutex"
	"priceadaptive/internal/tso"
)

// treiberStack is Treiber's lock-free stack: push links a fresh node onto
// the top pointer with CAS; pop unlinks with CAS. It is lock-free (hence
// obstruction-free), which places it in the object class of the paper's
// Section 5: by Corollary 1 no such implementation can be both adaptive and
// O(1)-fence, and indeed every CAS here is serializing, so an operation's
// fence complexity is 1 + (number of CAS failures) = Θ(k) under
// k-contention - adaptive, with the fence price the paper predicts.
//
// Nodes are bump-allocated from a per-process region of a preallocated pool
// and never reused, so the classic ABA hazard does not arise.
type treiberStack struct {
	top *tso.Var // node index + 1, 0 = empty
	val []*tso.Var
	nxt []*tso.Var
	// nextFree[p] is p's bump allocator cursor (touched only by p's
	// goroutine).
	nextFree []int
	perProc  int
	initLen  int
}

var _ Stack = (*treiberStack)(nil)

// NewTreiberStack allocates a Treiber stack supporting at most opsPerProc
// pushes per process.
func NewTreiberStack(mem *tso.Memory, n, opsPerProc int) (Stack, error) {
	return newTreiber(mem, n, opsPerProc, nil)
}

// NewTreiberInit allocates a Treiber stack pre-filled with init (init[0] at
// the bottom, last element on top), for the Lemma 9 limited-use counter.
// The initial nodes occupy a reserved region of the pool.
func NewTreiberInit(mem *tso.Memory, n, opsPerProc int, init []uint64) (Stack, error) {
	return newTreiber(mem, n, opsPerProc, init)
}

func newTreiber(mem *tso.Memory, n, opsPerProc int, init []uint64) (Stack, error) {
	if opsPerProc <= 0 {
		return nil, fmt.Errorf("objects: treiber opsPerProc must be positive, got %d", opsPerProc)
	}
	pool := len(init) + n*opsPerProc
	s := &treiberStack{
		val:      make([]*tso.Var, pool),
		nxt:      make([]*tso.Var, pool),
		nextFree: make([]int, n),
		perProc:  opsPerProc,
		initLen:  len(init),
	}
	// Pre-link the initial nodes: node i holds init[i] and points at node
	// i-1; the top points at the last.
	topInit := uint64(0)
	for i := range s.val {
		var v, nx uint64
		if i < len(init) {
			v = init[i]
			nx = uint64(i) // node i-1 is index i-1+1 = i; 0 for the bottom
			topInit = uint64(i + 1)
		}
		s.val[i] = mem.NewVarInit(fmt.Sprintf("treiber.val[%d]", i), v)
		s.nxt[i] = mem.NewVarInit(fmt.Sprintf("treiber.nxt[%d]", i), nx)
	}
	s.top = mem.NewVarInit("treiber.top", topInit)
	for p := range s.nextFree {
		s.nextFree[p] = len(init) + p*opsPerProc
	}
	return s, nil
}

// Name implements Stack.
func (s *treiberStack) Name() string { return "treiber-stack" }

// Push implements Stack.
func (s *treiberStack) Push(p *tso.Proc, v uint64) {
	id := int(p.ID())
	n := s.nextFree[id]
	if n >= s.initLen+(id+1)*s.perProc {
		panic(fmt.Sprintf("objects: treiber pool exhausted for p%d", id))
	}
	s.nextFree[id] = n + 1
	p.Write(s.val[n], v)
	for {
		t := p.Read(s.top)
		p.Write(s.nxt[n], t)
		// The CAS drains the buffer, publishing val and nxt before the
		// node becomes reachable.
		if _, ok := p.CAS(s.top, t, uint64(n)+1); ok {
			return
		}
	}
}

// Pop implements Stack.
func (s *treiberStack) Pop(p *tso.Proc) (uint64, bool) {
	for {
		t := p.Read(s.top)
		if t == 0 {
			return 0, false
		}
		n := int(t) - 1
		nx := p.Read(s.nxt[n])
		v := p.Read(s.val[n])
		if _, ok := p.CAS(s.top, t, nx); ok {
			return v, true
		}
	}
}

// OneTimeFromTreiber builds the Lemma 9 chain over the lock-free stack: a
// Treiber stack pre-filled with n..0, the limited-use counter over it, and
// Algorithm 1 on top - a one-time mutex whose only synchronization besides
// O(1) reads/writes/fences is a single lock-free pop.
func OneTimeFromTreiber(mem *tso.Memory, n int) (mutex.Lock, error) {
	st, err := NewTreiberInit(mem, n, 1, CounterRangeReversed(n))
	if err != nil {
		return nil, err
	}
	return NewOneTimeMutex(mem, n, NewCounterFromStack(st)), nil
}
