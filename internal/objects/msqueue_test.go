package objects

import (
	"fmt"
	"sort"
	"testing"

	"priceadaptive/internal/rmr"
	"priceadaptive/internal/tso"
)

func TestMSQueueSequentialFIFO(t *testing.T) {
	build := func(sim *tso.Simulator) (tso.Program, error) {
		q, err := NewMSQueue(sim.Memory(), 1, 8)
		if err != nil {
			return nil, err
		}
		return func(p *tso.Proc) {
			if _, ok := q.Dequeue(p); ok {
				panic("dequeue of empty queue succeeded")
			}
			for i := uint64(1); i <= 4; i++ {
				q.Enqueue(p, i*10)
			}
			for want := uint64(1); want <= 4; want++ {
				if v, ok := q.Dequeue(p); !ok || v != want*10 {
					panic(fmt.Sprintf("dequeue = %d,%v want %d", v, ok, want*10))
				}
			}
			if _, ok := q.Dequeue(p); ok {
				panic("queue should be empty")
			}
			// Interleave: enqueue after draining works (tail/head realign).
			q.Enqueue(p, 99)
			if v, ok := q.Dequeue(p); !ok || v != 99 {
				panic("reuse after drain failed")
			}
			p.CS()
		}, nil
	}
	runProgram(t, tso.Config{N: 1}, build, tso.Sequential{})
}

func TestMSQueueConcurrentConservation(t *testing.T) {
	const n, per = 4, 3
	popped := make([][]uint64, n)
	build := func(sim *tso.Simulator) (tso.Program, error) {
		q, err := NewMSQueue(sim.Memory(), n, per)
		if err != nil {
			return nil, err
		}
		return func(p *tso.Proc) {
			base := uint64(p.ID()) * 100
			for i := uint64(0); i < per; i++ {
				q.Enqueue(p, base+i+1)
			}
			for len(popped[p.ID()]) < per {
				if v, ok := q.Dequeue(p); ok {
					popped[p.ID()] = append(popped[p.ID()], v)
				}
			}
			p.CS()
		}, nil
	}
	for seed := int64(1); seed <= 6; seed++ {
		for i := range popped {
			popped[i] = nil
		}
		runProgram(t, tso.Config{N: n, AllowConcurrentCS: true}, build, tso.NewRandom(seed, 0.3))
		var all []uint64
		for _, o := range popped {
			all = append(all, o...)
		}
		if len(all) != n*per {
			t.Fatalf("seed %d: dequeued %d values", seed, len(all))
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		for i := 1; i < len(all); i++ {
			if all[i] == all[i-1] {
				t.Fatalf("seed %d: duplicate %d", seed, all[i])
			}
		}
	}
}

func TestMSQueuePerProcessFIFOOrder(t *testing.T) {
	// FIFO per producer: a single consumer must see each producer's values
	// in its enqueue order.
	const n = 3 // 2 producers + 1 consumer
	const per = 4
	var got []uint64
	build := func(sim *tso.Simulator) (tso.Program, error) {
		q, err := NewMSQueue(sim.Memory(), n, per)
		if err != nil {
			return nil, err
		}
		return func(p *tso.Proc) {
			if p.ID() < 2 {
				base := uint64(p.ID()) * 100
				for i := uint64(0); i < per; i++ {
					q.Enqueue(p, base+i+1)
				}
			} else {
				for len(got) < 2*per {
					if v, ok := q.Dequeue(p); ok {
						got = append(got, v)
					}
				}
			}
			p.CS()
		}, nil
	}
	for seed := int64(1); seed <= 6; seed++ {
		got = nil
		runProgram(t, tso.Config{N: n, AllowConcurrentCS: true}, build, tso.NewRandom(seed, 0.3))
		last := map[uint64]uint64{}
		for _, v := range got {
			producer := v / 100
			if v <= last[producer] {
				t.Fatalf("seed %d: per-producer FIFO broken: %v", seed, got)
			}
			last[producer] = v
		}
	}
}

func TestMSQueueAsCounterAndOneTime(t *testing.T) {
	const n = 6
	out := make([]uint64, n)
	build := func(sim *tso.Simulator) (tso.Program, error) {
		q, err := NewMSQueueInit(sim.Memory(), n, 1, CounterRange(n))
		if err != nil {
			return nil, err
		}
		c := NewCounterFromQueue(q)
		return func(p *tso.Proc) {
			out[p.ID()] = c.FetchIncrement(p)
			p.CS()
		}, nil
	}
	runProgram(t, tso.Config{N: n, AllowConcurrentCS: true}, build, tso.NewRandom(5, 0.3))
	checkCounterOutputs(t, out)

	for seed := int64(1); seed <= 6; seed++ {
		build := func(sim *tso.Simulator) (tso.Program, error) {
			l, err := OneTimeFromMSQueue(sim.Memory(), n)
			if err != nil {
				return nil, err
			}
			return func(p *tso.Proc) {
				l.Lock(p)
				p.CS()
				l.Unlock(p)
			}, nil
		}
		runProgram(t, tso.Config{N: n}, build, tso.NewRandom(seed, 0.3))
	}
}

func TestMSQueueFenceAdaptivity(t *testing.T) {
	fences := func(n int) int {
		sim, err := tso.NewSimulator(tso.Config{N: n, AllowConcurrentCS: true}, func(s *tso.Simulator) (tso.Program, error) {
			q, err := NewMSQueueInit(s.Memory(), n, 1, CounterRange(n))
			if err != nil {
				return nil, err
			}
			return func(p *tso.Proc) {
				q.Dequeue(p)
				p.CS()
			}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		defer sim.Kill()
		acc := rmr.Attach(sim, rmr.ModelCCWriteBack)
		if _, err := tso.Run(sim, tso.NewRoundRobin(), 10_000_000); err != nil {
			t.Fatal(err)
		}
		return acc.Summarize().MaxFences
	}
	f1, f8 := fences(1), fences(8)
	if f1 != 1 {
		t.Errorf("solo dequeue fences = %d, want 1", f1)
	}
	if f8 <= f1 {
		t.Errorf("contended dequeue fences = %d, want > %d", f8, f1)
	}
}

func TestMSQueuePoolExhaustionPanics(t *testing.T) {
	build := func(sim *tso.Simulator) (tso.Program, error) {
		q, err := NewMSQueue(sim.Memory(), 1, 1)
		if err != nil {
			return nil, err
		}
		return func(p *tso.Proc) {
			q.Enqueue(p, 1)
			q.Enqueue(p, 2)
			p.CS()
		}, nil
	}
	sim, err := tso.NewSimulator(tso.Config{N: 1}, build)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Kill()
	_, _ = tso.Run(sim, tso.Sequential{}, 100000)
	if _, ok := sim.ProgramPanic(0); !ok {
		t.Fatal("pool exhaustion must panic")
	}
}

func TestMSQueueValidation(t *testing.T) {
	sim, err := tso.NewSimulator(tso.Config{N: 1}, func(s *tso.Simulator) (tso.Program, error) {
		_, err := NewMSQueue(s.Memory(), 1, 0)
		return nil, err
	})
	if err == nil {
		sim.Kill()
		t.Fatal("opsPerProc=0 must be rejected")
	}
}
