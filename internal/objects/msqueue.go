package objects

import (
	"fmt"

	"priceadaptive/internal/mutex"
	"priceadaptive/internal/tso"
)

// msQueue is the Michael-Scott lock-free FIFO queue: a linked list with a
// dummy head node; enqueue links a fresh node after the tail with CAS and
// swings the tail, dequeue swings the head. Like the Treiber stack it is
// lock-free and therefore in the object class of Section 5, and every CAS
// is serializing: operations cost Θ(1) fences solo and Θ(k) under
// k-contention - adaptive, paying the paper's fence price.
//
// Nodes are bump-allocated from per-process regions and never reused, so
// ABA does not arise. Node references are stored as index+1 with 0 = nil.
type msQueue struct {
	head, tail *tso.Var
	val, nxt   []*tso.Var
	nextFree   []int
	perProc    int
	initLen    int
}

var _ Queue = (*msQueue)(nil)

// NewMSQueue allocates a Michael-Scott queue supporting at most opsPerProc
// enqueues per process.
func NewMSQueue(mem *tso.Memory, n, opsPerProc int) (Queue, error) {
	return newMSQueue(mem, n, opsPerProc, nil)
}

// NewMSQueueInit allocates a Michael-Scott queue pre-filled with init
// (init[0] at the head), for the Lemma 9 limited-use counter.
func NewMSQueueInit(mem *tso.Memory, n, opsPerProc int, init []uint64) (Queue, error) {
	return newMSQueue(mem, n, opsPerProc, init)
}

func newMSQueue(mem *tso.Memory, n, opsPerProc int, init []uint64) (Queue, error) {
	if opsPerProc <= 0 {
		return nil, fmt.Errorf("objects: msqueue opsPerProc must be positive, got %d", opsPerProc)
	}
	// Node 0 is the dummy; nodes 1..len(init) hold the initial values.
	pool := 1 + len(init) + n*opsPerProc
	q := &msQueue{
		val:      make([]*tso.Var, pool),
		nxt:      make([]*tso.Var, pool),
		nextFree: make([]int, n),
		perProc:  opsPerProc,
		initLen:  1 + len(init),
	}
	for i := range q.val {
		var v, nx uint64
		if i >= 1 && i <= len(init) {
			v = init[i-1]
		}
		if i < len(init) {
			nx = uint64(i + 2) // node i links to node i+1 (stored as index+1)
		}
		q.val[i] = mem.NewVarInit(fmt.Sprintf("msq.val[%d]", i), v)
		q.nxt[i] = mem.NewVarInit(fmt.Sprintf("msq.nxt[%d]", i), nx)
	}
	q.head = mem.NewVarInit("msq.head", 1) // dummy
	q.tail = mem.NewVarInit("msq.tail", uint64(len(init))+1)
	for p := range q.nextFree {
		q.nextFree[p] = q.initLen + p*opsPerProc
	}
	return q, nil
}

// Name implements Queue.
func (q *msQueue) Name() string { return "ms-queue" }

// Enqueue implements Queue.
func (q *msQueue) Enqueue(p *tso.Proc, v uint64) {
	id := int(p.ID())
	n := q.nextFree[id]
	if n >= q.initLen+(id+1)*q.perProc {
		panic(fmt.Sprintf("objects: msqueue pool exhausted for p%d", id))
	}
	q.nextFree[id] = n + 1
	p.Write(q.val[n], v)
	// nxt[n] is 0 (nil) by construction and the node is private until
	// linked; the linking CAS drains the buffer, publishing val first.
	for {
		t := p.Read(q.tail)
		tn := p.Read(q.nxt[t-1])
		if tn != 0 {
			// Tail is lagging: help swing it forward.
			p.CAS(q.tail, t, tn)
			continue
		}
		if _, ok := p.CAS(q.nxt[t-1], 0, uint64(n)+1); ok {
			p.CAS(q.tail, t, uint64(n)+1)
			return
		}
	}
}

// Dequeue implements Queue.
func (q *msQueue) Dequeue(p *tso.Proc) (uint64, bool) {
	for {
		h := p.Read(q.head)
		t := p.Read(q.tail)
		hn := p.Read(q.nxt[h-1])
		if h == t {
			if hn == 0 {
				return 0, false
			}
			// Tail lags behind a half-finished enqueue: help.
			p.CAS(q.tail, t, hn)
			continue
		}
		v := p.Read(q.val[hn-1])
		if _, ok := p.CAS(q.head, h, hn); ok {
			return v, true
		}
	}
}

// OneTimeFromMSQueue builds the Lemma 9 chain over the lock-free queue: a
// Michael-Scott queue pre-filled with 0..n, the limited-use counter over it,
// and Algorithm 1 on top.
func OneTimeFromMSQueue(mem *tso.Memory, n int) (mutex.Lock, error) {
	q, err := NewMSQueueInit(mem, n, 1, CounterRange(n))
	if err != nil {
		return nil, err
	}
	return NewOneTimeMutex(mem, n, NewCounterFromQueue(q)), nil
}
