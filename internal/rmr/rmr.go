// Package rmr implements remote-memory-reference (RMR) accounting for the
// three machine models the paper's results apply to: distributed shared
// memory (DSM), cache-coherent with a write-through protocol (CC-WT), and
// cache-coherent with a write-back protocol (CC-WB).
//
// An Accountant consumes the event stream of a tso.Simulator (attach it with
// sim.AddObserver(acc.Observe)) and maintains per-process, per-passage
// counts of RMRs, fences, and critical events. The coherence protocols
// follow the description quoted in Section 2 of the paper (from Golab,
// Hadzilacos, Hendler and Woelfel).
package rmr

import (
	"encoding/json"
	"fmt"

	"priceadaptive/internal/tso"
)

// CacheModel selects the RMR cost model.
type CacheModel int

const (
	// ModelDSM charges an RMR for every access to a remote variable.
	ModelDSM CacheModel = iota + 1
	// ModelCCWriteThrough charges reads that miss the cache and all write
	// commits; commits invalidate other processes' cached copies.
	ModelCCWriteThrough
	// ModelCCWriteBack holds cached copies in shared or exclusive mode;
	// reads miss unless a copy is held, writes miss unless an exclusive
	// copy is held.
	ModelCCWriteBack
)

// String returns the conventional name of the cost model.
func (m CacheModel) String() string {
	switch m {
	case ModelDSM:
		return "DSM"
	case ModelCCWriteThrough:
		return "CC-WT"
	case ModelCCWriteBack:
		return "CC-WB"
	default:
		return fmt.Sprintf("CacheModel(%d)", int(m))
	}
}

// Models lists all supported cache models, for sweeps.
func Models() []CacheModel {
	return []CacheModel{ModelDSM, ModelCCWriteThrough, ModelCCWriteBack}
}

// MarshalJSON renders the model by name so persisted artifacts (witness
// files, job results) stay readable.
func (m CacheModel) MarshalJSON() ([]byte, error) {
	return json.Marshal(m.String())
}

// UnmarshalJSON accepts both the conventional name and a bare integer.
func (m *CacheModel) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		v, err := ParseModel(s)
		if err != nil {
			return err
		}
		*m = v
		return nil
	}
	var i int
	if err := json.Unmarshal(data, &i); err != nil {
		return fmt.Errorf("rmr: cache model must be a name or an integer: %w", err)
	}
	*m = CacheModel(i)
	return nil
}

// ParseModel parses a cache-model name as used by flags and job params.
// The empty string means DSM.
func ParseModel(s string) (CacheModel, error) {
	switch s {
	case "", "dsm", "DSM":
		return ModelDSM, nil
	case "cc-wt", "ccwt", "CC-WT":
		return ModelCCWriteThrough, nil
	case "cc-wb", "ccwb", "CC-WB":
		return ModelCCWriteBack, nil
	}
	return 0, fmt.Errorf("rmr: unknown cache model %q (want dsm, cc-wt or cc-wb)", s)
}

// PassageMetrics aggregates the cost of one passage of one process.
type PassageMetrics struct {
	// RMRs is the number of remote memory references under the
	// accountant's cache model.
	RMRs int
	// Fences is the fence complexity: completed fences plus serializing
	// CAS operations.
	Fences int
	// Critical is the number of critical events (Definition 2).
	Critical int
	// Events is the total number of events executed.
	Events int
	// Complete reports whether the passage finished (Exit executed).
	Complete bool
	// Recovery marks a passage attempt opened by a Recover transition: the
	// post-crash re-execution whose cost the crash-RMR accounting (after
	// Chan-Woelfel, arXiv:2106.03185) charges separately from failure-free
	// passages.
	Recovery bool
}

// Accountant tracks RMR costs for one cache model over a simulation run.
// It is driven by Observe and is not safe for concurrent use.
type Accountant struct {
	model CacheModel
	// lines[varIndex][proc] is the coherence mode of proc's cached copy
	// (process IDs are dense, so a slice per variable suffices).
	lines map[int][]Mode
	// passages[proc] has one entry per passage of proc.
	passages map[tso.ProcID][]PassageMetrics
}

// NewAccountant returns an accountant for the given model.
func NewAccountant(model CacheModel) *Accountant {
	return &Accountant{
		model:    model,
		lines:    make(map[int][]Mode),
		passages: make(map[tso.ProcID][]PassageMetrics),
	}
}

// Attach creates an accountant and registers it on the simulator.
func Attach(sim *tso.Simulator, model CacheModel) *Accountant {
	a := NewAccountant(model)
	sim.AddObserver(a.Observe)
	return a
}

// Model returns the accountant's cache model.
func (a *Accountant) Model() CacheModel { return a.model }

// Observe consumes one event. Events must be fed in execution order.
func (a *Accountant) Observe(ev tso.Event) {
	if ev.Kind == tso.EvCrash {
		// The crash is the adversary's doing, not a step of the process;
		// the interrupted passage simply never completes.
		return
	}
	if ev.Kind == tso.EvEnter || ev.Kind == tso.EvRecover {
		// Recovery re-enters the interrupted passage; its retry is
		// accounted as a fresh passage attempt, tagged so the crash-RMR
		// aggregates can charge post-recovery cost separately.
		a.passages[ev.P] = append(a.passages[ev.P], PassageMetrics{Recovery: ev.Kind == tso.EvRecover})
	}
	cur := a.current(ev.P)
	if cur == nil {
		return // event outside any passage; cannot happen in practice
	}
	cur.Events++
	if ev.Critical {
		cur.Critical++
	}
	if ev.Fence {
		cur.Fences++
	}
	if a.isRMR(ev) {
		cur.RMRs++
	}
	if ev.Kind == tso.EvExit {
		cur.Complete = true
	}
}

func (a *Accountant) current(p tso.ProcID) *PassageMetrics {
	ps := a.passages[p]
	if len(ps) == 0 {
		return nil
	}
	return &ps[len(ps)-1]
}

// isRMR decides whether the event costs an RMR under the model, updating
// cache state as a side effect for the CC models via the exported
// Classify predicate.
func (a *Accountant) isRMR(ev tso.Event) bool {
	if !ev.Access || ev.Var == nil {
		return false
	}
	kind, ok := eventAccessKind(ev)
	if !ok {
		return false
	}
	return Classify(a.model, kind, int(ev.P), ev.Remote, a.line(ev.Var, int(ev.P)))
}

// eventAccessKind maps an access event to its AccessKind.
func eventAccessKind(ev tso.Event) (AccessKind, bool) {
	switch ev.Kind {
	case tso.EvRead:
		return AccessRead, true
	case tso.EvWriteCommit:
		return AccessWriteCommit, true
	case tso.EvCAS:
		if ev.CASOK {
			return AccessCASSuccess, true
		}
		return AccessCASFail, true
	}
	return 0, false
}

// line returns the cache line of v, grown to cover process p.
func (a *Accountant) line(v *tso.Var, p int) []Mode {
	l := a.lines[v.Index()]
	for len(l) <= p {
		l = append(l, ModeInvalid)
	}
	a.lines[v.Index()] = l
	return l
}

// Passages returns the per-passage metrics recorded for process p. The last
// entry may describe an in-progress passage.
func (a *Accountant) Passages(p tso.ProcID) []PassageMetrics {
	out := make([]PassageMetrics, len(a.passages[p]))
	copy(out, a.passages[p])
	return out
}

// Summary aggregates completed passages across all processes.
type Summary struct {
	// Model is the cache model the metrics were computed under.
	Model CacheModel
	// Passages is the number of completed passages.
	Passages int
	// MaxRMRs and MeanRMRs summarize RMRs per passage.
	MaxRMRs  int
	MeanRMRs float64
	// MaxFences and MeanFences summarize fence complexity per passage.
	MaxFences  int
	MeanFences float64
	// MaxCritical and MeanCritical summarize critical events per passage.
	MaxCritical  int
	MeanCritical float64
	// RecoveryPassages counts the completed passages that were opened by a
	// Recover transition, and MaxRecoveryRMRs / MeanRecoveryRMRs summarize
	// the RMRs of exactly those passages - the post-crash cost the
	// crash-RMR bounds (Chan-Woelfel) are stated over. Zero when the run
	// had no crashes.
	RecoveryPassages int
	MaxRecoveryRMRs  int
	MeanRecoveryRMRs float64
}

// Summarize aggregates all completed passages.
func (a *Accountant) Summarize() Summary {
	s := Summary{Model: a.model}
	var rmrs, fences, crit, recRMRs int
	for _, ps := range a.passages {
		for _, m := range ps {
			if !m.Complete {
				continue
			}
			s.Passages++
			rmrs += m.RMRs
			fences += m.Fences
			crit += m.Critical
			if m.RMRs > s.MaxRMRs {
				s.MaxRMRs = m.RMRs
			}
			if m.Fences > s.MaxFences {
				s.MaxFences = m.Fences
			}
			if m.Critical > s.MaxCritical {
				s.MaxCritical = m.Critical
			}
			if m.Recovery {
				s.RecoveryPassages++
				recRMRs += m.RMRs
				if m.RMRs > s.MaxRecoveryRMRs {
					s.MaxRecoveryRMRs = m.RMRs
				}
			}
		}
	}
	if s.Passages > 0 {
		s.MeanRMRs = float64(rmrs) / float64(s.Passages)
		s.MeanFences = float64(fences) / float64(s.Passages)
		s.MeanCritical = float64(crit) / float64(s.Passages)
	}
	if s.RecoveryPassages > 0 {
		s.MeanRecoveryRMRs = float64(recRMRs) / float64(s.RecoveryPassages)
	}
	return s
}

// String renders the summary as a single table row.
func (s Summary) String() string {
	return fmt.Sprintf("%-6s passages=%d rmr(max=%d mean=%.1f) fences(max=%d mean=%.1f) crit(max=%d mean=%.1f)",
		s.Model, s.Passages, s.MaxRMRs, s.MeanRMRs, s.MaxFences, s.MeanFences, s.MaxCritical, s.MeanCritical)
}
