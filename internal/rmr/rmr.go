// Package rmr implements remote-memory-reference (RMR) accounting for the
// three machine models the paper's results apply to: distributed shared
// memory (DSM), cache-coherent with a write-through protocol (CC-WT), and
// cache-coherent with a write-back protocol (CC-WB).
//
// An Accountant consumes the event stream of a tso.Simulator (attach it with
// sim.AddObserver(acc.Observe)) and maintains per-process, per-passage
// counts of RMRs, fences, and critical events. The coherence protocols
// follow the description quoted in Section 2 of the paper (from Golab,
// Hadzilacos, Hendler and Woelfel).
package rmr

import (
	"fmt"

	"priceadaptive/internal/tso"
)

// CacheModel selects the RMR cost model.
type CacheModel int

const (
	// ModelDSM charges an RMR for every access to a remote variable.
	ModelDSM CacheModel = iota + 1
	// ModelCCWriteThrough charges reads that miss the cache and all write
	// commits; commits invalidate other processes' cached copies.
	ModelCCWriteThrough
	// ModelCCWriteBack holds cached copies in shared or exclusive mode;
	// reads miss unless a copy is held, writes miss unless an exclusive
	// copy is held.
	ModelCCWriteBack
)

// String returns the conventional name of the cost model.
func (m CacheModel) String() string {
	switch m {
	case ModelDSM:
		return "DSM"
	case ModelCCWriteThrough:
		return "CC-WT"
	case ModelCCWriteBack:
		return "CC-WB"
	default:
		return fmt.Sprintf("CacheModel(%d)", int(m))
	}
}

// Models lists all supported cache models, for sweeps.
func Models() []CacheModel {
	return []CacheModel{ModelDSM, ModelCCWriteThrough, ModelCCWriteBack}
}

// cacheState is the per-variable coherence state in the CC models.
type cacheState int

const (
	invalid cacheState = iota
	shared
	exclusive
)

// PassageMetrics aggregates the cost of one passage of one process.
type PassageMetrics struct {
	// RMRs is the number of remote memory references under the
	// accountant's cache model.
	RMRs int
	// Fences is the fence complexity: completed fences plus serializing
	// CAS operations.
	Fences int
	// Critical is the number of critical events (Definition 2).
	Critical int
	// Events is the total number of events executed.
	Events int
	// Complete reports whether the passage finished (Exit executed).
	Complete bool
}

// Accountant tracks RMR costs for one cache model over a simulation run.
// It is driven by Observe and is not safe for concurrent use.
type Accountant struct {
	model CacheModel
	// lines[varIndex][proc] is the coherence state of proc's cached copy.
	lines map[int]map[tso.ProcID]cacheState
	// passages[proc] has one entry per passage of proc.
	passages map[tso.ProcID][]PassageMetrics
}

// NewAccountant returns an accountant for the given model.
func NewAccountant(model CacheModel) *Accountant {
	return &Accountant{
		model:    model,
		lines:    make(map[int]map[tso.ProcID]cacheState),
		passages: make(map[tso.ProcID][]PassageMetrics),
	}
}

// Attach creates an accountant and registers it on the simulator.
func Attach(sim *tso.Simulator, model CacheModel) *Accountant {
	a := NewAccountant(model)
	sim.AddObserver(a.Observe)
	return a
}

// Model returns the accountant's cache model.
func (a *Accountant) Model() CacheModel { return a.model }

// Observe consumes one event. Events must be fed in execution order.
func (a *Accountant) Observe(ev tso.Event) {
	if ev.Kind == tso.EvEnter {
		a.passages[ev.P] = append(a.passages[ev.P], PassageMetrics{})
	}
	cur := a.current(ev.P)
	if cur == nil {
		return // event outside any passage; cannot happen in practice
	}
	cur.Events++
	if ev.Critical {
		cur.Critical++
	}
	if ev.Fence {
		cur.Fences++
	}
	if a.isRMR(ev) {
		cur.RMRs++
	}
	if ev.Kind == tso.EvExit {
		cur.Complete = true
	}
}

func (a *Accountant) current(p tso.ProcID) *PassageMetrics {
	ps := a.passages[p]
	if len(ps) == 0 {
		return nil
	}
	return &ps[len(ps)-1]
}

// isRMR decides whether the event costs an RMR under the model, updating
// cache state as a side effect for the CC models.
func (a *Accountant) isRMR(ev tso.Event) bool {
	if !ev.Access || ev.Var == nil {
		return false
	}
	switch a.model {
	case ModelDSM:
		return ev.Remote
	case ModelCCWriteThrough:
		return a.writeThrough(ev)
	case ModelCCWriteBack:
		return a.writeBack(ev)
	default:
		return false
	}
}

func (a *Accountant) line(v *tso.Var) map[tso.ProcID]cacheState {
	l := a.lines[v.Index()]
	if l == nil {
		l = make(map[tso.ProcID]cacheState, 2)
		a.lines[v.Index()] = l
	}
	return l
}

// writeThrough implements the write-through protocol: a read needs a valid
// cached copy (miss creates one); a write always costs an RMR and
// invalidates all other cached copies.
func (a *Accountant) writeThrough(ev tso.Event) bool {
	l := a.line(ev.Var)
	switch ev.Kind {
	case tso.EvRead:
		if l[ev.P] != invalid {
			return false
		}
		l[ev.P] = shared
		return true
	case tso.EvWriteCommit, tso.EvCAS:
		if ev.Kind == tso.EvCAS && !ev.CASOK {
			// A failed CAS behaves like a read for caching purposes.
			if l[ev.P] != invalid {
				return false
			}
			l[ev.P] = shared
			return true
		}
		for q := range l {
			if q != ev.P {
				delete(l, q)
			}
		}
		return true
	default:
		return false
	}
}

// writeBack implements the write-back protocol with shared/exclusive modes.
func (a *Accountant) writeBack(ev tso.Event) bool {
	l := a.line(ev.Var)
	switch ev.Kind {
	case tso.EvRead:
		if l[ev.P] != invalid {
			return false
		}
		// Miss: downgrade any exclusive copy to shared and take a shared
		// copy.
		for q, st := range l {
			if st == exclusive {
				l[q] = shared
			}
		}
		l[ev.P] = shared
		return true
	case tso.EvWriteCommit, tso.EvCAS:
		if ev.Kind == tso.EvCAS && !ev.CASOK {
			if l[ev.P] != invalid {
				return false
			}
			for q, st := range l {
				if st == exclusive {
					l[q] = shared
				}
			}
			l[ev.P] = shared
			return true
		}
		if l[ev.P] == exclusive {
			return false
		}
		// Miss: invalidate all other copies and take exclusive.
		for q := range l {
			if q != ev.P {
				delete(l, q)
			}
		}
		l[ev.P] = exclusive
		return true
	default:
		return false
	}
}

// Passages returns the per-passage metrics recorded for process p. The last
// entry may describe an in-progress passage.
func (a *Accountant) Passages(p tso.ProcID) []PassageMetrics {
	out := make([]PassageMetrics, len(a.passages[p]))
	copy(out, a.passages[p])
	return out
}

// Summary aggregates completed passages across all processes.
type Summary struct {
	// Model is the cache model the metrics were computed under.
	Model CacheModel
	// Passages is the number of completed passages.
	Passages int
	// MaxRMRs and MeanRMRs summarize RMRs per passage.
	MaxRMRs  int
	MeanRMRs float64
	// MaxFences and MeanFences summarize fence complexity per passage.
	MaxFences  int
	MeanFences float64
	// MaxCritical and MeanCritical summarize critical events per passage.
	MaxCritical  int
	MeanCritical float64
}

// Summarize aggregates all completed passages.
func (a *Accountant) Summarize() Summary {
	s := Summary{Model: a.model}
	var rmrs, fences, crit int
	for _, ps := range a.passages {
		for _, m := range ps {
			if !m.Complete {
				continue
			}
			s.Passages++
			rmrs += m.RMRs
			fences += m.Fences
			crit += m.Critical
			if m.RMRs > s.MaxRMRs {
				s.MaxRMRs = m.RMRs
			}
			if m.Fences > s.MaxFences {
				s.MaxFences = m.Fences
			}
			if m.Critical > s.MaxCritical {
				s.MaxCritical = m.Critical
			}
		}
	}
	if s.Passages > 0 {
		s.MeanRMRs = float64(rmrs) / float64(s.Passages)
		s.MeanFences = float64(fences) / float64(s.Passages)
		s.MeanCritical = float64(crit) / float64(s.Passages)
	}
	return s
}

// String renders the summary as a single table row.
func (s Summary) String() string {
	return fmt.Sprintf("%-6s passages=%d rmr(max=%d mean=%.1f) fences(max=%d mean=%.1f) crit(max=%d mean=%.1f)",
		s.Model, s.Passages, s.MaxRMRs, s.MeanRMRs, s.MaxFences, s.MeanFences, s.MaxCritical, s.MeanCritical)
}
