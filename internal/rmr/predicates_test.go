package rmr

import (
	"math/rand"
	"testing"
)

// TestClassifyWithinChargeBounds drives random access sequences through
// Classify for every model and requires each verdict to lie inside the
// static ChargeBounds interval the abstract interpreter sums over paths.
// This is the soundness link between dynamic accounting and the static
// RMR intervals: whatever cache state a run reaches, a single access can
// never cost more (or less) than the classification rule's bounds.
func TestClassifyWithinChargeBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	kinds := []AccessKind{AccessRead, AccessWriteCommit, AccessCASSuccess, AccessCASFail}
	for _, model := range Models() {
		for _, remote := range []bool{false, true} {
			const nprocs = 3
			line := make([]Mode, nprocs)
			for step := 0; step < 2000; step++ {
				k := kinds[rng.Intn(len(kinds))]
				p := rng.Intn(nprocs)
				lo, hi := ChargeBounds(model, k, remote)
				cost := 0
				if Classify(model, k, p, remote, line) {
					cost = 1
				}
				if cost < lo || cost > hi {
					t.Fatalf("%s %s remote=%v: dynamic cost %d outside static bounds [%d,%d]",
						model, k, remote, cost, lo, hi)
				}
			}
		}
	}
}

// TestClassifyProtocols pins the protocol rules on hand-picked sequences.
func TestClassifyProtocols(t *testing.T) {
	// Write-through: read miss, read hit, commit invalidates others and
	// does not grant the writer a copy.
	line := make([]Mode, 2)
	if !Classify(ModelCCWriteThrough, AccessRead, 0, true, line) {
		t.Error("WT first read must miss")
	}
	if Classify(ModelCCWriteThrough, AccessRead, 0, true, line) {
		t.Error("WT second read must hit")
	}
	if !Classify(ModelCCWriteThrough, AccessWriteCommit, 1, true, line) {
		t.Error("WT commit always costs")
	}
	if line[0] != ModeInvalid {
		t.Error("WT commit must invalidate the other copy")
	}
	if line[1] != ModeInvalid {
		t.Error("WT commit must not grant the writer a copy")
	}

	// Write-back: a read downgrades an exclusive copy; a repeat write on
	// an exclusive copy is free.
	line = make([]Mode, 2)
	if !Classify(ModelCCWriteBack, AccessWriteCommit, 0, true, line) {
		t.Error("WB first commit must miss")
	}
	if Classify(ModelCCWriteBack, AccessWriteCommit, 0, true, line) {
		t.Error("WB commit on an exclusive copy must be free")
	}
	if !Classify(ModelCCWriteBack, AccessRead, 1, true, line) {
		t.Error("WB read by another process must miss")
	}
	if line[0] != ModeShared || line[1] != ModeShared {
		t.Errorf("WB read must downgrade to shared/shared, got %v/%v", line[0], line[1])
	}

	// DSM ignores cache state entirely.
	if Classify(ModelDSM, AccessRead, 0, false, nil) {
		t.Error("DSM local access must be free")
	}
	if !Classify(ModelDSM, AccessRead, 0, true, nil) {
		t.Error("DSM remote access must cost")
	}
}
