package rmr

// This file exports the coherence-protocol classification rules as pure
// predicates, decoupled from the event-stream Accountant, so that the
// static analyzer (internal/analysis/absint) and the fast-engine
// differential harness apply the *same* rules the dynamic accounting
// uses. The Accountant is reimplemented on top of Classify; a divergence
// between static and dynamic RMR judgements is therefore a bug in the
// abstract footprints, never in a second copy of the protocol.

// Mode is the coherence mode of one process's cached copy of a variable.
type Mode uint8

const (
	// ModeInvalid means the process holds no valid cached copy.
	ModeInvalid Mode = iota
	// ModeShared is a read-only cached copy.
	ModeShared
	// ModeExclusive is a writable cached copy (write-back model only).
	ModeExclusive
)

// String renders the mode.
func (m Mode) String() string {
	switch m {
	case ModeShared:
		return "shared"
	case ModeExclusive:
		return "exclusive"
	}
	return "invalid"
}

// AccessKind classifies a variable access for RMR accounting. Only events
// that are accesses in the paper's sense (a read not satisfied from the
// process's own write buffer, a write commit, or a CAS) have a kind.
type AccessKind int

const (
	// AccessRead is a read satisfied from the cache or shared memory.
	AccessRead AccessKind = iota + 1
	// AccessWriteCommit makes a buffered write visible.
	AccessWriteCommit
	// AccessCASSuccess is a CAS whose comparison succeeded (it wrote).
	AccessCASSuccess
	// AccessCASFail is a CAS whose comparison failed; it behaves like a
	// read for caching purposes but still serializes the buffer.
	AccessCASFail
)

// String renders the access kind.
func (k AccessKind) String() string {
	switch k {
	case AccessRead:
		return "read"
	case AccessWriteCommit:
		return "commit"
	case AccessCASSuccess:
		return "cas"
	case AccessCASFail:
		return "cas-fail"
	}
	return "access(?)"
}

// Classify reports whether one access costs an RMR under the model,
// updating the cache line as a side effect for the CC models.
//
//   - line holds the per-process coherence modes of the accessed variable,
//     indexed by process ID (the caller allocates it once per variable; it
//     is ignored by the DSM model).
//   - remote reports DSM remoteness of the variable to process p (in the CC
//     models every variable is remote, so the flag is ignored there).
//
// The rules are the protocols quoted in Section 2 of the paper (from
// Golab, Hadzilacos, Hendler and Woelfel): DSM charges every access to a
// remote variable; write-through charges read misses and every write
// commit (which invalidates other copies); write-back holds shared or
// exclusive copies, charging reads without a copy and writes without an
// exclusive copy.
func Classify(model CacheModel, k AccessKind, p int, remote bool, line []Mode) bool {
	switch model {
	case ModelDSM:
		return remote
	case ModelCCWriteThrough:
		switch k {
		case AccessRead, AccessCASFail:
			if line[p] != ModeInvalid {
				return false
			}
			line[p] = ModeShared
			return true
		case AccessWriteCommit, AccessCASSuccess:
			// The commit invalidates every other copy; the writer's own
			// cached copy (if any) stays valid, but the write itself still
			// goes through to memory and costs an RMR.
			for q := range line {
				if q != p {
					line[q] = ModeInvalid
				}
			}
			return true
		}
	case ModelCCWriteBack:
		switch k {
		case AccessRead, AccessCASFail:
			if line[p] != ModeInvalid {
				return false
			}
			for q, m := range line {
				if m == ModeExclusive {
					line[q] = ModeShared
				}
			}
			line[p] = ModeShared
			return true
		case AccessWriteCommit, AccessCASSuccess:
			if line[p] == ModeExclusive {
				return false
			}
			for q := range line {
				if q != p {
					line[q] = ModeInvalid
				}
			}
			line[p] = ModeExclusive
			return true
		}
	}
	return false
}

// ChargeBounds returns the [min,max] RMR cost of a single access of kind k
// under the model, over all possible cache and locality states. It is the
// static classification rule the abstract interpreter applies to abstract
// access footprints: whatever cache state an execution is in, the dynamic
// Classify verdict for the access lies inside these bounds, so summing
// them along a program path yields a sound per-passage RMR interval.
//
// remote is the DSM locality of the variable (the CC models ignore it; in
// vmprog programs every variable is remote, matching tso.Memory.NewVar).
func ChargeBounds(model CacheModel, k AccessKind, remote bool) (lo, hi int) {
	switch model {
	case ModelDSM:
		if remote {
			return 1, 1
		}
		return 0, 0
	case ModelCCWriteThrough:
		switch k {
		case AccessWriteCommit, AccessCASSuccess:
			// Write-through commits always traverse the interconnect.
			return 1, 1
		default:
			// Reads and failed CASes hit iff a valid copy is cached.
			return 0, 1
		}
	case ModelCCWriteBack:
		// Every access can hit (copy held in a sufficient mode) or miss.
		return 0, 1
	}
	return 0, 0
}
