package rmr

import "priceadaptive/internal/obsv"

// annotationKey returns the span-annotation name for a cache model.
func annotationKey(m CacheModel) string {
	switch m {
	case ModelDSM:
		return "rmr_dsm"
	case ModelCCWriteThrough:
		return "rmr_ccwt"
	case ModelCCWriteBack:
		return "rmr_ccwb"
	default:
		return "rmr_unknown"
	}
}

// AnnotateTrace writes each accountant's per-passage RMR counts onto the
// tracer's spans. Both the accountant and the tracer append one entry per
// Enter/Recover in emission order, so passage attempt i of process p in one
// corresponds to attempt i in the other.
func AnnotateTrace(tr *obsv.Tracer, accs ...*Accountant) {
	if tr == nil {
		return
	}
	for _, a := range accs {
		if a == nil {
			continue
		}
		key := annotationKey(a.model)
		for p, ps := range a.passages {
			for i, m := range ps {
				tr.Annotate(int(p), i, key, m.RMRs)
			}
		}
	}
}
