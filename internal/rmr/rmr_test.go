package rmr

import (
	"testing"

	"priceadaptive/internal/tso"
)

func TestModelsStrings(t *testing.T) {
	if ModelDSM.String() != "DSM" || ModelCCWriteThrough.String() != "CC-WT" || ModelCCWriteBack.String() != "CC-WB" {
		t.Error("model names wrong")
	}
	if len(Models()) != 3 {
		t.Error("Models() must list 3 models")
	}
}

func TestDSMChargesRemoteAccessesOnly(t *testing.T) {
	var mine, theirs *tso.Var
	sim, err := tso.NewSimulator(tso.Config{N: 2, Model: tso.DSM}, func(s *tso.Simulator) (tso.Program, error) {
		mine = s.Memory().NewOwned("mine", 0)
		theirs = s.Memory().NewOwned("theirs", 1)
		return func(p *tso.Proc) {
			if p.ID() == 0 {
				p.Read(mine)   // local: free
				p.Read(theirs) // remote: 1 RMR
				p.Write(mine, 1)
				p.Write(theirs, 2)
				p.Fence() // commits: local free, remote 1 RMR
			}
			p.CS()
		}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Kill()
	acc := Attach(sim, ModelDSM)
	for !sim.Done(0) {
		if _, err := sim.Step(0); err != nil {
			t.Fatal(err)
		}
	}
	got := acc.Passages(0)[0]
	if got.RMRs != 2 {
		t.Errorf("DSM RMRs = %d, want 2", got.RMRs)
	}
	if got.Fences != 1 {
		t.Errorf("fences = %d, want 1", got.Fences)
	}
}

func TestWriteThroughReadCachingAndInvalidation(t *testing.T) {
	var v *tso.Var
	sim, err := tso.NewSimulator(tso.Config{N: 2, Model: tso.CC}, func(s *tso.Simulator) (tso.Program, error) {
		v = s.Memory().NewVar("v")
		return func(p *tso.Proc) {
			if p.ID() == 0 {
				p.Read(v) // miss: RMR, caches copy
				p.Read(v) // hit: free
				p.CS()
				return
			}
			p.Write(v, 1)
			p.Fence() // commit: RMR, invalidates p0's copy
			p.CS()
		}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Kill()
	acc := Attach(sim, ModelCCWriteThrough)
	// p0: Enter, Read, Read.
	for i := 0; i < 3; i++ {
		if _, err := sim.Step(0); err != nil {
			t.Fatal(err)
		}
	}
	if got := acc.Passages(0)[0].RMRs; got != 1 {
		t.Fatalf("p0 RMRs after cached re-read = %d, want 1", got)
	}
	// p1 commits, invalidating p0's copy.
	for i := 0; i < 5; i++ {
		if _, err := sim.Step(1); err != nil {
			t.Fatal(err)
		}
	}
	if got := acc.Passages(1)[0].RMRs; got != 1 {
		t.Fatalf("p1 RMRs = %d, want 1 (write-through commit)", got)
	}
	// A fresh simulator can't re-read; instead verify the line state via a
	// second read by p0 in the same run: we stopped p0 before CS, so its
	// program has pending CS. Re-reading isn't possible here; assert the
	// internal line state instead.
	l := acc.lines[v.Index()]
	if l[0] != ModeInvalid {
		t.Error("p0's cached copy must be invalidated by p1's commit")
	}
	if st := l[1]; st != ModeInvalid {
		// Write-through does not grant the writer a copy it didn't have.
		t.Errorf("p1 line state = %v, want invalid", st)
	}
}

func TestWriteThroughRereadAfterInvalidationCostsRMR(t *testing.T) {
	var v *tso.Var
	sim, err := tso.NewSimulator(tso.Config{N: 2, Model: tso.CC}, func(s *tso.Simulator) (tso.Program, error) {
		v = s.Memory().NewVar("v")
		return func(p *tso.Proc) {
			if p.ID() == 0 {
				p.Read(v)
				p.Read(v) // will be re-executed after invalidation? No - single program.
				p.Read(v)
			} else {
				p.Write(v, 1)
				p.Fence()
			}
			p.CS()
		}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Kill()
	acc := Attach(sim, ModelCCWriteThrough)
	step := func(p tso.ProcID, n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if _, err := sim.Step(p); err != nil {
				t.Fatal(err)
			}
		}
	}
	step(0, 2) // Enter, Read (miss)
	step(0, 1) // Read (hit)
	step(1, 5) // p1 full fence: invalidates
	step(0, 1) // Read (miss again)
	if got := acc.Passages(0)[0].RMRs; got != 2 {
		t.Errorf("p0 RMRs = %d, want 2 (miss, hit, invalidated, miss)", got)
	}
}

func TestWriteBackExclusiveWriteIsFree(t *testing.T) {
	var v *tso.Var
	sim, err := tso.NewSimulator(tso.Config{N: 1, Model: tso.CC}, func(s *tso.Simulator) (tso.Program, error) {
		v = s.Memory().NewVar("v")
		return func(p *tso.Proc) {
			p.Write(v, 1)
			p.Fence() // first commit: RMR, takes exclusive
			p.Write(v, 2)
			p.Fence() // second commit: exclusive held, free
			p.Read(v) // exclusive copy: free
			p.CS()
		}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Kill()
	acc := Attach(sim, ModelCCWriteBack)
	for !sim.Done(0) {
		if _, err := sim.Step(0); err != nil {
			t.Fatal(err)
		}
	}
	if got := acc.Passages(0)[0].RMRs; got != 1 {
		t.Errorf("WB RMRs = %d, want 1", got)
	}
}

func TestWriteBackReadDowngradesExclusive(t *testing.T) {
	var v *tso.Var
	sim, err := tso.NewSimulator(tso.Config{N: 2, Model: tso.CC}, func(s *tso.Simulator) (tso.Program, error) {
		v = s.Memory().NewVar("v")
		return func(p *tso.Proc) {
			if p.ID() == 0 {
				p.Write(v, 1)
				p.Fence() // exclusive
				p.Write(v, 2)
				p.Fence() // would be free... unless downgraded in between
			} else {
				p.Read(v)
			}
			p.CS()
		}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Kill()
	acc := Attach(sim, ModelCCWriteBack)
	step := func(p tso.ProcID, n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if _, err := sim.Step(p); err != nil {
				t.Fatal(err)
			}
		}
	}
	step(0, 5) // p0 commits v=1, holds exclusive
	step(1, 2) // p1 reads: RMR, downgrades p0 to shared
	step(0, 4) // p0 commits v=2: shared -> RMR again, invalidates p1
	p0 := acc.Passages(0)[0]
	p1 := acc.Passages(1)[0]
	if p0.RMRs != 2 {
		t.Errorf("p0 WB RMRs = %d, want 2 (downgraded between writes)", p0.RMRs)
	}
	if p1.RMRs != 1 {
		t.Errorf("p1 WB RMRs = %d, want 1", p1.RMRs)
	}
}

func TestFailedCASBehavesLikeRead(t *testing.T) {
	var v *tso.Var
	sim, err := tso.NewSimulator(tso.Config{N: 2, Model: tso.CC}, func(s *tso.Simulator) (tso.Program, error) {
		v = s.Memory().NewVarInit("v", 5)
		return func(p *tso.Proc) {
			p.CAS(v, 99, 1) // fails: v holds 5
			p.CAS(v, 98, 1) // fails again: cached
			p.CS()
		}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Kill()
	wt := Attach(sim, ModelCCWriteThrough)
	wb := Attach(sim, ModelCCWriteBack)
	for !sim.Done(0) {
		if _, err := sim.Step(0); err != nil {
			t.Fatal(err)
		}
	}
	if got := wt.Passages(0)[0].RMRs; got != 1 {
		t.Errorf("WT failed-CAS RMRs = %d, want 1", got)
	}
	if got := wb.Passages(0)[0].RMRs; got != 1 {
		t.Errorf("WB failed-CAS RMRs = %d, want 1", got)
	}
	// Both CAS attempts still count toward fence complexity.
	if got := wt.Passages(0)[0].Fences; got != 2 {
		t.Errorf("fences = %d, want 2", got)
	}
}

func TestSummarize(t *testing.T) {
	var v *tso.Var
	sim, err := tso.NewSimulator(tso.Config{N: 3, Passages: 2, Model: tso.CC}, func(s *tso.Simulator) (tso.Program, error) {
		v = s.Memory().NewVar("v")
		return func(p *tso.Proc) {
			p.Read(v)
			p.Write(v, uint64(p.ID()))
			p.Fence()
			p.CS()
		}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Kill()
	acc := Attach(sim, ModelDSM)
	if _, err := tso.Run(sim, tso.NewRoundRobin(), 100000); err != nil {
		t.Fatal(err)
	}
	s := acc.Summarize()
	if s.Passages != 6 {
		t.Fatalf("passages = %d, want 6", s.Passages)
	}
	if s.MeanFences != 1 || s.MaxFences != 1 {
		t.Errorf("fences mean=%v max=%v, want 1,1", s.MeanFences, s.MaxFences)
	}
	if s.MaxRMRs < 1 {
		t.Errorf("max RMRs = %d, want >= 1", s.MaxRMRs)
	}
	if s.String() == "" {
		t.Error("String must render")
	}
}

func TestObserveIgnoresNonAccessEvents(t *testing.T) {
	acc := NewAccountant(ModelCCWriteBack)
	acc.Observe(tso.Event{P: 0, Kind: tso.EvEnter})
	acc.Observe(tso.Event{P: 0, Kind: tso.EvWriteIssue}) // no Var access
	acc.Observe(tso.Event{P: 0, Kind: tso.EvBeginFence})
	acc.Observe(tso.Event{P: 0, Kind: tso.EvEndFence, Fence: true})
	got := acc.Passages(0)[0]
	if got.RMRs != 0 {
		t.Errorf("RMRs = %d, want 0", got.RMRs)
	}
	if got.Fences != 1 {
		t.Errorf("fences = %d, want 1", got.Fences)
	}
	if got.Events != 4 {
		t.Errorf("events = %d, want 4", got.Events)
	}
}

// TestPaperClaimCriticalAtMostTwiceRMRs checks the Section 2 argument the
// paper uses to replace RMRs with critical events: "since the first write is
// always an RMR, at least half of all critical events are RMRs", i.e.
// critical events <= 2 * RMRs per passage under both CC protocols.
func TestPaperClaimCriticalAtMostTwiceRMRs(t *testing.T) {
	rand := func(seed int64) tso.Build {
		return func(sim *tso.Simulator) (tso.Program, error) {
			vars := sim.Memory().NewArray("v", 4)
			return func(p *tso.Proc) {
				x := uint64(seed) + uint64(p.ID())*2654435761
				for i := 0; i < 20; i++ {
					x = x*6364136223846793005 + 1442695040888963407
					v := vars[int(x>>33)%len(vars)]
					switch (x >> 13) % 4 {
					case 0, 1:
						p.Read(v)
					case 2:
						p.Write(v, x%100)
					case 3:
						p.Fence()
					}
				}
				p.CS()
			}, nil
		}
	}
	for seed := int64(1); seed <= 10; seed++ {
		for _, model := range []CacheModel{ModelCCWriteThrough, ModelCCWriteBack} {
			sim, err := tso.NewSimulator(tso.Config{N: 3, AllowConcurrentCS: true}, rand(seed))
			if err != nil {
				t.Fatal(err)
			}
			acc := Attach(sim, model)
			if _, err := tso.Run(sim, tso.NewRandom(seed, 0.3), 1_000_000); err != nil {
				sim.Kill()
				t.Fatal(err)
			}
			for p := 0; p < 3; p++ {
				for i, ps := range acc.Passages(tso.ProcID(p)) {
					if ps.Critical > 2*ps.RMRs {
						t.Errorf("seed %d %v p%d passage %d: critical=%d > 2*RMRs=%d",
							seed, model, p, i, ps.Critical, 2*ps.RMRs)
					}
				}
			}
			sim.Kill()
		}
	}
}

// TestWriteBackSingleExclusiveHolder checks the coherence invariant: at any
// time at most one process holds a cache line in exclusive mode, and if one
// does, nobody else holds a copy at all.
func TestWriteBackSingleExclusiveHolder(t *testing.T) {
	build := func(sim *tso.Simulator) (tso.Program, error) {
		vars := sim.Memory().NewArray("v", 3)
		return func(p *tso.Proc) {
			for i := 0; i < 10; i++ {
				v := vars[(int(p.ID())+i)%3]
				if i%3 == 0 {
					p.Write(v, uint64(i))
					p.Fence()
				} else {
					p.Read(v)
				}
			}
			p.CS()
		}, nil
	}
	sim, err := tso.NewSimulator(tso.Config{N: 4, AllowConcurrentCS: true}, build)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Kill()
	acc := Attach(sim, ModelCCWriteBack)
	bad := false
	sim.AddObserver(func(ev tso.Event) {
		for _, line := range acc.lines {
			excl := 0
			holders := 0
			for _, st := range line {
				if st != ModeInvalid {
					holders++
				}
				if st == ModeExclusive {
					excl++
				}
			}
			if excl > 1 || (excl == 1 && holders > 1) {
				bad = true
			}
		}
	})
	if _, err := tso.Run(sim, tso.NewRandom(3, 0.3), 1_000_000); err != nil {
		t.Fatal(err)
	}
	if bad {
		t.Error("write-back coherence invariant violated")
	}
}
