package vmprog

import (
	"fmt"

	"priceadaptive/internal/tso"
)

// Adapt returns a tso.Build that runs the VM program on the goroutine-based
// simulator, making VM locks first-class citizens of every existing tool
// (schedulers, RMR accounting, the lower-bound construction).
func Adapt(p *Program) tso.Build {
	return func(sim *tso.Simulator) (tso.Program, error) {
		if err := p.Validate(); err != nil {
			return nil, err
		}
		vars := make([]*tso.Var, len(p.Vars))
		for i, name := range p.Vars {
			vars[i] = sim.Memory().NewVar("vm." + name)
		}
		return func(proc *tso.Proc) {
			var regs [NumRegs]uint64
			pc := 0
			if proc.Recovering() && p.Recover > 0 {
				// A crash dropped the volatile registers; the recovery
				// passage re-enters through the recover section on a
				// zeroed register file, exactly like Engine.Crash.
				pc = p.Recover
			}
			for {
				in := p.Code[pc]
				switch in.Op {
				case OpConst:
					regs[in.A] = in.Imm
				case OpMe:
					regs[in.A] = uint64(proc.ID())
				case OpProcs:
					regs[in.A] = uint64(proc.N())
				case OpAdd:
					regs[in.A] = regs[in.B] + regs[in.C]
				case OpSub:
					regs[in.A] = regs[in.B] - regs[in.C]
				case OpJump:
					pc = in.Target
					continue
				case OpJumpIfEq:
					if regs[in.A] == regs[in.B] {
						pc = in.Target
						continue
					}
				case OpJumpIfNe:
					if regs[in.A] != regs[in.B] {
						pc = in.Target
						continue
					}
				case OpJumpIfLt:
					if regs[in.A] < regs[in.B] {
						pc = in.Target
						continue
					}
				case OpRead:
					vi := mustVar(p, in, &regs)
					regs[in.A] = proc.Read(vars[vi])
				case OpWrite:
					vi := mustVar(p, in, &regs)
					proc.Write(vars[vi], regs[in.A])
				case OpFence:
					proc.Fence()
				case OpCAS:
					vi := mustVar(p, in, &regs)
					observed, _ := proc.CAS(vars[vi], regs[in.B], regs[in.C])
					regs[in.A] = observed
				case OpCS:
					proc.CS()
				case OpHalt:
					return
				}
				pc++
			}
		}, nil
	}
}

// mustVar resolves a variable reference, panicking on range errors (the
// simulator surfaces program panics).
func mustVar(p *Program, in Instr, regs *[NumRegs]uint64) int {
	vi, err := p.varIndex(in, regs)
	if err != nil {
		panic(fmt.Sprint(err))
	}
	return vi
}
