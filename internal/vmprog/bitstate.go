package vmprog

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"priceadaptive/internal/tso"
)

// bpath is an immutable cons cell of real-frame decisions. Bitstate mode has
// no breadcrumb maps to reconstruct schedules from, so frontier items carry
// their whole path as a shared-prefix list: memory is one cell per tree edge
// still reachable from a live frontier item, and dead layers are collected.
type bpath struct {
	d    tso.Decision
	prev *bpath
}

func (p *bpath) schedule() []tso.Decision {
	var rev []tso.Decision
	for ; p != nil; p = p.prev {
		rev = append(rev, p.d)
	}
	out := make([]tso.Decision, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// bitem is a bitstate frontier entry.
type bitem struct {
	st   *State
	h    uint64
	path *bpath
	cum  []int
}

// mix64 is the splitmix64 finalizer, deriving the second bit position from
// the state hash so the two probes are (near-)independent.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// bgraph is the shared state of a bitstate run: a double-hashed atomic bit
// array in place of exact seen-sets, plus sharded next-layer queues.
type bgraph struct {
	words  []atomic.Uint64
	mask   uint64
	states atomic.Int64
	queues []bqueue
	stop   atomic.Bool
	mu     sync.Mutex
	err    error // guarded by mu
}

type bqueue struct {
	mu   sync.Mutex
	next []bitem // guarded by mu
}

func (g *bgraph) fail(err error) {
	g.mu.Lock()
	if g.err == nil {
		g.err = err
	}
	g.mu.Unlock()
	g.stop.Store(true)
}

// testSet sets the bit and reports whether it was already set.
func (g *bgraph) testSet(pos uint64) bool {
	w := &g.words[pos>>6]
	bit := uint64(1) << (pos & 63)
	for {
		old := w.Load()
		if old&bit != 0 {
			return true
		}
		if w.CompareAndSwap(old, old|bit) {
			return false
		}
	}
}

// seen reports whether both probe bits for h are set (without setting them).
func (g *bgraph) seen(h uint64) bool {
	p1, p2 := h&g.mask, mix64(h)&g.mask
	return g.words[p1>>6].Load()&(1<<(p1&63)) != 0 &&
		g.words[p2>>6].Load()&(1<<(p2&63)) != 0
}

// insert marks h seen and enqueues the item if at least one probe bit was
// clear. Two workers racing on the same fresh state may both enqueue it (a
// bounded duplication, resolved when the copies' successors all hash seen);
// a layer's outcome is therefore not bit-for-bit deterministic across
// worker counts, which the Probabilistic result flag already announces.
func (g *bgraph) insert(it bitem) {
	seen1 := g.testSet(it.h & g.mask)
	seen2 := g.testSet(mix64(it.h) & g.mask)
	if seen1 && seen2 {
		return
	}
	g.states.Add(1)
	q := &g.queues[it.h%uint64(len(g.queues))]
	q.mu.Lock()
	q.next = append(q.next, it)
	q.mu.Unlock()
}

// bworker is one bitstate exploration worker.
type bworker struct {
	eng   *Engine
	g     *bgraph
	ctx   context.Context // padvet:allow ctx-field run root: a worker lives for one check call
	ticks int

	transitions int
	ampleSteps  int

	viol     bool
	violH    uint64
	violPath *bpath
}

func (w *bworker) canon(s *State) (*State, []int) {
	if w.eng.red == nil {
		return s, nil
	}
	return w.eng.red.canonicalize(s)
}

func (w *bworker) push(parent bitem, d tso.Decision, cc *State, perm []int) {
	h := w.eng.hash(cc)
	w.g.insert(bitem{
		st:   cc,
		h:    h,
		path: &bpath{d: realDecision(w.eng.red, d, parent.cum), prev: parent.path},
		cum:  compose(perm, parent.cum, w.eng.n),
	})
}

func (w *bworker) expand(it bitem) {
	w.ticks++
	if w.ticks&0xff == 0 {
		if err := w.ctx.Err(); err != nil {
			w.g.fail(err)
			return
		}
	}
	e := w.eng
	if e.Violated(it.st) {
		if !w.viol || it.h < w.violH {
			w.viol, w.violH, w.violPath = true, it.h, it.path
		}
		return
	}
	if e.red != nil {
		if id, ok := e.ampleProcess(it.st); ok {
			amp := e.procDecisions(it.st, id, nil)
			kids := make([]*State, len(amp))
			perms := make([][]int, len(amp))
			proviso := false
			for i, d := range amp {
				child := it.st.Clone()
				if err := e.Apply(child, d); err != nil {
					w.g.fail(fmt.Errorf("vmprog: bitstate check: %w", err))
					return
				}
				kids[i], perms[i] = w.canon(child)
				// With only bits for identity there is no discovery layer
				// to freeze, so any seen ample successor triggers the
				// proviso. Over-triggering costs reduction, never
				// soundness: a truly visited successor always reads seen.
				if w.g.seen(e.hash(kids[i])) {
					proviso = true
				}
			}
			if !proviso {
				w.ampleSteps++
				w.transitions += len(amp)
				for i, d := range amp {
					w.push(it, d, kids[i], perms[i])
				}
				return
			}
		}
	}
	for _, d := range e.decisions(it.st) {
		child := it.st.Clone()
		if err := e.Apply(child, d); err != nil {
			w.g.fail(fmt.Errorf("vmprog: bitstate check: %w", err))
			return
		}
		w.transitions++
		cc, perm := w.canon(child)
		w.push(it, d, cc, perm)
	}
}

// checkBitstate is CheckParallel's bitstate mode: the same layered frontier
// search with the exact sharded seen-sets replaced by a double-hashed bit
// array sized 1<<BitstateBits bits. The result always carries
// Probabilistic=true.
func (e *Engine) checkBitstate(ctx context.Context, o ParallelOpts) (*CheckResult, error) {
	workers, maxStates := parallelWorkers(o)
	bits := o.BitstateBits
	if bits < 10 {
		bits = 10
	}
	if bits > 36 {
		bits = 36
	}
	size := uint64(1) << bits
	g := &bgraph{
		words:  make([]atomic.Uint64, size/64),
		mask:   size - 1,
		queues: make([]bqueue, workers),
	}
	ws := make([]*bworker, workers)
	for i := range ws {
		ws[i] = &bworker{eng: e.workerClone(), g: g, ctx: ctx}
	}
	res := &CheckResult{Complete: true, Probabilistic: true}
	root, rootPerm := ws[0].canon(ws[0].eng.Initial())
	g.insert(bitem{st: root, h: ws[0].eng.hash(root), cum: rootPerm})
	for {
		fronts := make([][]bitem, len(g.queues))
		empty := true
		for i := range g.queues {
			fronts[i] = g.queues[i].next // padvet:allow lockguard layer barrier: the coordinator runs alone, workers are parked
			g.queues[i].next = nil       // padvet:allow lockguard layer barrier: the coordinator runs alone, workers are parked
			if len(fronts[i]) > 0 {
				empty = false
			}
		}
		if empty {
			break
		}
		cursors := make([]atomic.Int64, len(fronts))
		const chunk = 16
		var wg sync.WaitGroup
		for wi := range ws {
			wg.Add(1)
			go func(wi int) {
				defer wg.Done()
				w := ws[wi]
				for off := 0; off < len(fronts); off++ {
					fi := (wi + off) % len(fronts)
					items := fronts[fi]
					for {
						if g.stop.Load() {
							return
						}
						start := int(cursors[fi].Add(chunk)) - chunk
						if start >= len(items) {
							break
						}
						end := start + chunk
						if end > len(items) {
							end = len(items)
						}
						for k := start; k < end; k++ {
							w.expand(items[k])
						}
					}
				}
			}(wi)
		}
		wg.Wait()
		if g.err != nil { // padvet:allow lockguard layer barrier: the coordinator runs alone, workers are parked
			return nil, g.err // padvet:allow lockguard layer barrier: the coordinator runs alone, workers are parked
		}
		viol, violH := false, uint64(0)
		var violPath *bpath
		for _, w := range ws {
			res.Transitions += w.transitions
			res.AmpleSteps += w.ampleSteps
			w.transitions, w.ampleSteps = 0, 0
			if w.viol && (!viol || w.violH < violH) {
				viol, violH, violPath = true, w.violH, w.violPath
			}
			w.viol = false
		}
		res.States = int(g.states.Load())
		if viol {
			res.Violation = true
			res.Schedule = violPath.schedule()
			res.Complete = false
			return res, nil
		}
		if res.States > maxStates {
			res.Complete = false
			return res, nil
		}
	}
	res.States = int(g.states.Load())
	return res, nil
}
