package vmprog

import "priceadaptive/internal/tso"

// EffectKind classifies the shared-memory access (if any) one applied
// decision performs, mirroring the event kinds tso.Simulator reports to
// its observers. Local computation, buffer pushes, store-forwarded reads,
// fence begins, the CS marker and the crash/enter/recover scheduling
// transitions perform no access and classify as EffectNone.
type EffectKind int

const (
	// EffectNone is a step with no memory access.
	EffectNone EffectKind = iota
	// EffectRead is a read satisfied from shared memory (not forwarded
	// from the process's own buffer).
	EffectRead
	// EffectCommit makes one buffered write visible.
	EffectCommit
	// EffectCAS is a serializing compare-and-swap (buffer already empty).
	EffectCAS
)

// Effect describes what one applied decision did, in exactly the terms the
// RMR accounting needs: the access performed (kind + variable + CAS
// outcome) and the passage-boundary markers (enter, recover, exit, fence
// completion). It is the fast-engine twin of the tso.Event stream that
// rmr.Accountant consumes, letting replayed schedules be charged without a
// goroutine simulation.
type Effect struct {
	// P is the acting process.
	P int
	// Kind is the access class; Var is the accessed variable index (valid
	// for EffectRead, EffectCommit and EffectCAS).
	Kind EffectKind
	Var  int
	// CASOK reports a successful comparison for EffectCAS.
	CASOK bool
	// Fence reports a completed serializing event: an EndFence step or a
	// serializing CAS.
	Fence bool
	// Enter marks the step that starts the process's passage; Recover
	// marks a post-crash Recover transition (which also opens a passage
	// attempt); Exit marks the Halt completing the passage; Crash marks a
	// crash decision (the adversary's doing, not a step of the process).
	Enter   bool
	Recover bool
	Exit    bool
	Crash   bool
}

// ApplyEffect applies d like Apply and additionally classifies what the
// decision did. The classification is derived from the pre-state, matching
// the event the goroutine engine would have emitted for the same decision.
func (e *Engine) ApplyEffect(s *State, d tso.Decision) (Effect, error) {
	ef := Effect{P: int(d.P)}
	if d.Crash {
		ef.Crash = true
		return ef, e.Crash(s, int(d.P))
	}
	if int(d.P) < 0 || int(d.P) >= e.n {
		return ef, errInvalidDecision
	}
	p := &s.Procs[d.P]
	if d.Commit {
		if len(p.Buf) == 0 {
			return ef, errInvalidDecision
		}
		ef.Kind = EffectCommit
		ef.Var = p.Buf[0].v
		if d.VarPlus1 > 0 {
			ef.Var = d.VarPlus1 - 1
		}
		return ef, e.Apply(s, d)
	}
	switch {
	case p.Done:
		return ef, errInvalidDecision
	case !p.Started:
		ef.Enter = true
	case p.Crashed:
		ef.Recover = true
	case p.Fencing:
		if len(p.Buf) > 0 {
			ef.Kind = EffectCommit
			ef.Var = p.Buf[0].v
		} else {
			ef.Fence = true // EndFence
		}
	default:
		switch in := e.prog.Code[p.PC]; in.Op {
		case OpRead:
			vi, err := e.prog.varIndex(in, &p.Regs)
			if err != nil {
				return ef, err
			}
			if _, own := bufLookup(p, vi); !own {
				ef.Kind = EffectRead
				ef.Var = vi
			}
		case OpCAS:
			if len(p.Buf) > 0 {
				ef.Kind = EffectCommit
				ef.Var = p.Buf[0].v
			} else {
				vi, err := e.prog.varIndex(in, &p.Regs)
				if err != nil {
					return ef, err
				}
				ef.Kind = EffectCAS
				ef.Var = vi
				ef.CASOK = s.Mem[vi] == p.Regs[in.B]
				ef.Fence = true // a serializing CAS counts as a fence event
			}
		case OpHalt:
			ef.Exit = true
		}
	}
	return ef, e.Step(s, int(d.P))
}
