package vmprog

import "priceadaptive/internal/tso"

// maxSymmetryN bounds the process count for which canonicalization is
// attempted: the canonicalizer enumerates all n! permutations per state, so
// beyond this the factorial cost of canonicalizing outweighs the factorial
// state savings in wall-clock terms.
const maxSymmetryN = 7

// reducer holds the per-engine derived tables the reduced exploration
// consults on every state: instantiated future-footprint bitsets, the
// permutation group (when symmetry facts are present), and reusable scratch
// buffers. It is built once by UsePruning and is not safe for concurrent
// Check calls, matching the engine's existing contract.
type reducer struct {
	e   *Engine
	f   *PruneFacts
	sym *SymmetryFacts // nil: no symmetry canonicalization
	// perms enumerates S_n with the identity first.
	perms [][]int
	// candR/candW are the ample candidate's read/write footprint scratch.
	candR, candW []uint64
	// encA/encB are state-encoding scratch for the min-lex comparison.
	encA, encB []uint64
}

func newReducer(e *Engine, f *PruneFacts) *reducer {
	r := &reducer{e: e, f: f}
	nw := (len(e.prog.Vars) + 63) / 64
	r.candR = make([]uint64, nw)
	r.candW = make([]uint64, nw)
	if f.Symmetry != nil && e.n <= maxSymmetryN {
		r.sym = f.Symmetry
		r.perms = permutations(e.n)
	}
	return r
}

// permutations enumerates S_n; the identity is the first element.
func permutations(n int) [][]int {
	cur := make([]int, n)
	for i := range cur {
		cur[i] = i
	}
	var out [][]int
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := k; i < n; i++ {
			cur[k], cur[i] = cur[i], cur[k]
			rec(k + 1)
			cur[k], cur[i] = cur[i], cur[k]
		}
	}
	rec(0)
	return out
}

func setBit(b []uint64, i int)      { b[i/64] |= 1 << (i % 64) }
func hasBit(b []uint64, i int) bool { return b[i/64]&(1<<(i%64)) != 0 }

func wordsIntersect(a, b []uint64) bool {
	for i := range a {
		if a[i]&b[i] != 0 {
			return true
		}
	}
	return false
}

// ampleProcess selects a process whose enabled transitions form a sound
// singleton-process ample set in s: every transition is invisible (C2: the
// Violated predicate cannot change - not the CS, cannot park at the CS, and
// buffer pushes/commits never touch it) and statically independent of
// everything any other process may still do (C1: the candidate's dynamic
// read/write footprint is disjoint from every other process's future
// footprint and pending buffered writes, so all its transitions commute
// with and stay enabled under theirs). C0 holds because only processes with
// at least one enabled transition are considered; C3 (the cycle proviso) is
// discharged dynamically by Check's visited-proviso.
func (e *Engine) ampleProcess(s *State) (int, bool) {
	r := e.red
	f := r.f
	nc := len(e.prog.Code)
cand:
	for id := range s.Procs {
		p := &s.Procs[id]
		if p.Done && len(p.Buf) == 0 {
			continue // no enabled transitions (C0)
		}
		for i := range r.candR {
			r.candR[i] = 0
			r.candW[i] = 0
		}
		// The step transition's effect and visibility, by dynamic case.
		if !p.Done {
			if !p.Started {
				// Enter: local instructions only, no shared accesses.
				if f.VisibleStart {
					continue
				}
			} else if p.Fencing {
				// Commit head while draining, or EndFence + advance.
				if len(p.Buf) == 0 && f.VisibleAt[p.PC] {
					continue
				}
			} else {
				switch in := e.prog.Code[p.PC]; in.Op {
				case OpRead:
					vi, err := e.prog.varIndex(in, &p.Regs)
					if err != nil {
						continue
					}
					if _, own := bufLookup(p, vi); !own {
						// Forwarded from the own buffer the read is a
						// purely local step; only a memory read can race.
						setBit(r.candR, vi)
					}
					if f.VisibleAt[p.PC] {
						continue
					}
				case OpWrite:
					// A buffer push: memory is untouched; the eventual
					// commit is a later, separately-judged transition.
					if f.VisibleAt[p.PC] {
						continue
					}
				case OpFence:
					// Fence-begin only sets the draining flag.
				case OpCAS:
					if len(p.Buf) == 0 {
						vi, err := e.prog.varIndex(in, &p.Regs)
						if err != nil {
							continue
						}
						setBit(r.candR, vi)
						setBit(r.candW, vi)
						if f.VisibleAt[p.PC] {
							continue
						}
					}
					// Non-empty buffer: the step is a drain commit.
				case OpHalt:
					// Sets Done; Violated never depends on it.
				default:
					// OpCS (visible by definition) or a local op the
					// engine should never park at: not a candidate.
					continue
				}
			}
		}
		// Any enabled commit publishes a buffered write.
		for i := range p.Buf {
			setBit(r.candW, p.Buf[i].v)
		}
		// Independence from every other process's future (C1).
		for q := range s.Procs {
			if q == id {
				continue
			}
			qs := &s.Procs[q]
			qpc := 0
			if qs.Started {
				qpc = qs.PC
			}
			qr := f.FutureReads[q*nc+qpc]
			qw := f.FutureWrites[q*nc+qpc]
			if wordsIntersect(r.candW, qr) || wordsIntersect(r.candW, qw) ||
				wordsIntersect(r.candR, qw) {
				continue cand
			}
			for i := range qs.Buf {
				if hasBit(r.candR, qs.Buf[i].v) || hasBit(r.candW, qs.Buf[i].v) {
					continue cand
				}
			}
		}
		return id, true
	}
	return 0, false
}

// zeroDead zeroes every dead register in place: a register not live-in at
// the process's program point is never read before being overwritten, so
// states differing only in such junk are bisimilar and may share a hash.
func (r *reducer) zeroDead(s *State) {
	for i := range s.Procs {
		p := &s.Procs[i]
		live := r.f.LiveRegs[p.PC]
		for reg := 0; reg < NumRegs; reg++ {
			if live&(1<<reg) == 0 {
				p.Regs[reg] = 0
			}
		}
	}
}

// applyPerm returns the image of s under the process permutation perm
// (perm[i] is the slot process i moves to): process states move to their
// permuted slot with registers rewritten through the per-pc forms, memory
// cells move through the cell forms with values rewritten through the value
// forms, and buffered writes are relabeled in order. Dead registers are
// zeroed so the action is well-defined on liveness-normalized states.
func (r *reducer) applyPerm(s *State, perm []int) *State {
	sym := r.sym
	ns := &State{
		Mem:   make([]uint64, len(s.Mem)),
		Procs: make([]PState, len(s.Procs)),
	}
	for v, x := range s.Mem {
		tv := sym.CellForms[v].apply(uint64(v), perm)
		ns.Mem[tv] = sym.ValForms[v].apply(x, perm)
	}
	ns.Crashes = s.Crashes
	for i := range s.Procs {
		p := &s.Procs[i]
		q := PState{
			PC:         p.PC,
			Fencing:    p.Fencing,
			Started:    p.Started,
			Done:       p.Done,
			InExit:     p.InExit,
			Crashed:    p.Crashed,
			CrashCount: p.CrashCount,
		}
		live := r.f.LiveRegs[p.PC]
		forms := sym.RegForms[p.PC]
		for reg := 0; reg < NumRegs; reg++ {
			if live&(1<<reg) != 0 {
				q.Regs[reg] = forms[reg].apply(p.Regs[reg], perm)
			}
		}
		if len(p.Buf) > 0 {
			q.Buf = make([]bufEnt, len(p.Buf))
			for k, b := range p.Buf {
				q.Buf[k] = bufEnt{
					v: int(sym.CellForms[b.v].apply(uint64(b.v), perm)),
					x: sym.ValForms[b.v].apply(b.x, perm),
				}
			}
		}
		ns.Procs[perm[i]] = q
	}
	return ns
}

// encode appends an injective flat encoding of s to dst (the same fields the
// engine hashes, unhashed) for lexicographic comparison.
func encode(dst []uint64, s *State) []uint64 {
	dst = append(dst, s.Mem...)
	for i := range s.Procs {
		p := &s.Procs[i]
		dst = append(dst, pflags(p))
		dst = append(dst, p.Regs[:]...)
		dst = append(dst, uint64(len(p.Buf)))
		for _, b := range p.Buf {
			dst = append(dst, uint64(b.v), b.x)
		}
	}
	return dst
}

func lexLess(a, b []uint64) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// canonicalize maps s to its canonical representative: dead registers
// zeroed, then - when symmetry facts are installed - the minimum of the
// orbit of s under S_n in the lexicographic order of the flat encoding. It
// returns the representative and the permutation that produced it (nil for
// the identity). s is consumed and may be mutated or returned.
func (r *reducer) canonicalize(s *State) (*State, []int) {
	r.zeroDead(s)
	if r.sym == nil {
		return s, nil
	}
	best, bestPerm := s, []int(nil)
	r.encA = encode(r.encA[:0], s)
	for _, perm := range r.perms[1:] {
		cand := r.applyPerm(s, perm)
		r.encB = encode(r.encB[:0], cand)
		if lexLess(r.encB, r.encA) {
			best, bestPerm = cand, perm
			r.encA, r.encB = r.encB, r.encA
		}
	}
	return best, bestPerm
}

// compose chains two slot maps: first cum, then perm (nil is the identity).
// The result maps a real slot to its slot after both.
func compose(perm, cum []int, n int) []int {
	if perm == nil {
		return cum
	}
	if cum == nil {
		return perm
	}
	out := make([]int, n)
	for i := range out {
		out[i] = perm[cum[i]]
	}
	return out
}

// realDecision translates a decision taken in the canonical frame of a node
// with cumulative permutation cum back into the real (initial) frame, so
// recorded schedules replay against an unreduced engine: the acting process
// is the cum-preimage of the canonical slot, and a PSO commit's variable is
// pulled back through the cell forms under the inverse permutation.
func realDecision(r *reducer, d tso.Decision, cum []int) tso.Decision {
	if cum == nil {
		return d
	}
	inv := make([]int, len(cum))
	for i, j := range cum {
		inv[j] = i
	}
	d.P = tso.ProcID(inv[int(d.P)])
	if d.Commit && d.VarPlus1 > 0 {
		v := d.VarPlus1 - 1
		d.VarPlus1 = int(r.sym.CellForms[v].apply(uint64(v), inv)) + 1
	}
	return d
}

// PermuteState returns the image of s under the process permutation perm
// per the installed symmetry facts (including dead-register zeroing, so the
// action is on liveness-normalized states), or nil when no symmetry facts
// are installed. Exported for the brute-force symmetry oracle tests in
// internal/analysis/por.
func (e *Engine) PermuteState(s *State, perm []int) *State {
	if e.red == nil || e.red.sym == nil {
		return nil
	}
	c := s.Clone()
	e.red.zeroDead(c)
	return e.red.applyPerm(c, perm)
}

// CanonicalState returns the canonical representative of s and the
// permutation that produced it (nil for the identity). Without installed
// facts s is returned unchanged. The input is not mutated.
func (e *Engine) CanonicalState(s *State) (*State, []int) {
	if e.red == nil {
		return s, nil
	}
	return e.red.canonicalize(s.Clone())
}

// PermuteVar returns the memory cell that receives variable v's content
// under perm per the installed symmetry facts (v itself when none are
// installed): the cell-form action the canonicalizer and schedule
// translation use.
func (e *Engine) PermuteVar(v int, perm []int) int {
	if e.red == nil || e.red.sym == nil {
		return v
	}
	return int(e.red.sym.CellForms[v].apply(uint64(v), perm))
}
