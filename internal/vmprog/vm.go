// Package vmprog represents lock algorithms as small register programs
// instead of opaque Go closures. The same program can then run on two
// engines:
//
//   - the goroutine-based tso.Simulator (via Adapt), reusing every tool in
//     the repository - schedulers, RMR accounting, the lower-bound
//     construction;
//   - a fast engine (Engine) whose entire process state (program counter,
//     registers, write buffer) is a flat value that can be cloned in O(1)
//     allocations, giving the model checker true state snapshots: no
//     replay-based backtracking and, because a parked spin loop returns to
//     the same program counter and registers, naturally finite state spaces
//     without the CollapseSpins soundness caveat.
//
// The two engines implement the same TSO/PSO operational semantics; the
// differential tests in this package drive identical schedules through both
// and require identical observable behaviour.
package vmprog

import (
	"fmt"
	"strconv"
)

// OpCode enumerates VM instructions. Local instructions (registers and
// control flow) cost nothing in the memory model: both engines execute them
// as part of reaching the next shared-memory event, exactly as Go code
// between two Proc calls executes inside the program goroutine.
type OpCode int

const (
	// OpConst sets reg[A] = Imm.
	OpConst OpCode = iota + 1
	// OpMe sets reg[A] = the process ID.
	OpMe
	// OpProcs sets reg[A] = N, the number of processes.
	OpProcs
	// OpAdd sets reg[A] = reg[B] + reg[C].
	OpAdd
	// OpSub sets reg[A] = reg[B] - reg[C].
	OpSub
	// OpJump jumps to Target.
	OpJump
	// OpJumpIfEq jumps to Target when reg[A] == reg[B].
	OpJumpIfEq
	// OpJumpIfNe jumps to Target when reg[A] != reg[B].
	OpJumpIfNe
	// OpJumpIfLt jumps to Target when reg[A] < reg[B].
	OpJumpIfLt
	// OpRead is an event: reg[A] = value of the addressed variable.
	OpRead
	// OpWrite is an event: issue a write of reg[A] to the addressed
	// variable (buffered under TSO).
	OpWrite
	// OpFence is an event sequence: BeginFence, commits, EndFence.
	OpFence
	// OpCAS is a serializing event: if the addressed variable holds
	// reg[B], set it to reg[C]; reg[A] receives the observed value. The
	// comparison outcome is reg[A] == reg[B].
	OpCAS
	// OpCS is the critical-section transition event.
	OpCS
	// OpHalt ends the passage (the harness appends the Exit transition).
	OpHalt
)

// NumRegs is the number of registers per process.
const NumRegs = 8

// AdaptivityClass declares how a program's step complexity scales, which
// determines the Theorem 1 fence lower bound the static analyzer holds it
// to: an adaptive algorithm (critical events a function of contention k, not
// N) must admit executions with k-1 fences at contention k.
type AdaptivityClass int

const (
	// ClassUnknown makes no claim; the analyzer only applies the universal
	// (contention-2) bound.
	ClassUnknown AdaptivityClass = iota
	// ClassNonAdaptive declares Ω(N) critical events per passage.
	ClassNonAdaptive
	// ClassAdaptive declares per-passage work that depends on contention
	// only, the class Theorem 1 charges Θ(k) fences.
	ClassAdaptive
)

// String renders the class for reports.
func (c AdaptivityClass) String() string {
	switch c {
	case ClassNonAdaptive:
		return "non-adaptive"
	case ClassAdaptive:
		return "adaptive"
	}
	return "unknown"
}

// Instr is one VM instruction. Variables are addressed as Base + reg[Index]
// into the program's variable table; Index < 0 means no index register.
type Instr struct {
	Op     OpCode `json:"op"`
	A      int    `json:"a,omitempty"`
	B      int    `json:"b,omitempty"`
	C      int    `json:"c,omitempty"`
	Imm    uint64 `json:"imm,omitempty"`
	Base   int    `json:"base,omitempty"`
	Index  int    `json:"index,omitempty"`
	Target int    `json:"target,omitempty"`
}

// Program is a validated VM lock program plus its variable table.
type Program struct {
	Name string `json:"name"`
	// Vars names every shared variable; values index the engines' memory.
	// Arrays declared via Builder.Array are named name[0..n-1]; the static
	// analyzer recovers array extents from this naming convention.
	Vars []string `json:"vars"`
	// Code is the instruction sequence of one passage (entry protocol,
	// one OpCS, exit protocol, OpHalt).
	Code []Instr `json:"code"`
	// Class is the program's declared adaptivity class, consumed by the
	// static analyzer's Theorem 1 checks.
	Class AdaptivityClass `json:"class,omitempty"`
	// Recover is the entry PC of the program's recover section, the
	// recoverable-mutual-exclusion passage a crashed process re-enters
	// through: a crash discards the write buffer and every volatile
	// register, and the recovery transition resumes execution at Recover
	// with a zeroed register file. Zero means no recover section - a
	// crashed process re-runs the passage from the top (PC 0), the
	// pre-RME behaviour. The recover section is ordinary program text: it
	// may jump back into the main passage (e.g. straight to the
	// critical-section path when the process finds it still holds the
	// lock) and shares the single OpCS.
	Recover int `json:"recover,omitempty"`
}

// eventOp reports whether an opcode is a shared-memory event.
func eventOp(op OpCode) bool {
	switch op {
	case OpRead, OpWrite, OpFence, OpCAS, OpCS:
		return true
	}
	return false
}

// Validate checks structural well-formedness: register and variable ranges,
// jump targets, exactly the final instruction OpHalt, and at least one OpCS.
func (p *Program) Validate() error {
	if len(p.Code) == 0 {
		return fmt.Errorf("vmprog %s: empty program", p.Name)
	}
	if p.Code[len(p.Code)-1].Op != OpHalt {
		return fmt.Errorf("vmprog %s: program must end with Halt", p.Name)
	}
	cs := 0
	for i, in := range p.Code {
		for _, r := range []int{in.A, in.B, in.C} {
			if r < 0 || r >= NumRegs {
				return fmt.Errorf("vmprog %s: instr %d: register %d out of range", p.Name, i, r)
			}
		}
		switch in.Op {
		case OpRead, OpWrite, OpCAS:
			if in.Base < 0 || in.Base >= len(p.Vars) {
				return fmt.Errorf("vmprog %s: instr %d: variable base %d out of range", p.Name, i, in.Base)
			}
			if in.Index < -1 || in.Index >= NumRegs {
				return fmt.Errorf("vmprog %s: instr %d: index register %d out of range", p.Name, i, in.Index)
			}
		case OpJump, OpJumpIfEq, OpJumpIfNe, OpJumpIfLt:
			if in.Target < 0 || in.Target >= len(p.Code) {
				return fmt.Errorf("vmprog %s: instr %d: jump target %d out of range", p.Name, i, in.Target)
			}
		case OpCS:
			cs++
		case OpConst, OpMe, OpProcs, OpAdd, OpSub, OpFence, OpHalt:
		default:
			return fmt.Errorf("vmprog %s: instr %d: unknown opcode %d", p.Name, i, int(in.Op))
		}
	}
	if cs != 1 {
		return fmt.Errorf("vmprog %s: program must contain exactly one CS, has %d", p.Name, cs)
	}
	if p.Recover < 0 || p.Recover >= len(p.Code) {
		return fmt.Errorf("vmprog %s: recover entry %d out of range [0,%d)", p.Name, p.Recover, len(p.Code))
	}
	return nil
}

// Addr resolves the variable addressed by an instruction under a given
// register file, exactly as the engines do: Base + reg[Index], erroring
// when the computed index escapes the variable table. It exists for
// tools (the abstract interpreter's witness tracer) that classify engine
// steps without re-implementing the addressing rule.
func (p *Program) Addr(in Instr, regs *[NumRegs]uint64) (int, error) {
	return p.varIndex(in, regs)
}

// varIndex resolves an addressed variable for a given register file. It
// returns an error when the computed index escapes the variable table.
func (p *Program) varIndex(in Instr, regs *[NumRegs]uint64) (int, error) {
	idx := in.Base
	if in.Index >= 0 {
		idx += int(regs[in.Index])
	}
	if idx < 0 || idx >= len(p.Vars) {
		return 0, fmt.Errorf("vmprog %s: variable index %d out of range [0,%d)", p.Name, idx, len(p.Vars))
	}
	return idx, nil
}

// Builder assembles programs with labels and named variables.
type Builder struct {
	name    string
	vars    []string
	code    []Instr
	labels  map[string]int
	fixups  map[int]string
	class   AdaptivityClass
	recover string // label of the recover-section entry, "" for none
	err     error
}

// NewBuilder starts a program named name.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:   name,
		labels: make(map[string]int),
		fixups: make(map[int]string),
	}
}

// Var declares a scalar shared variable and returns its base index.
func (b *Builder) Var(name string) int {
	b.vars = append(b.vars, name)
	return len(b.vars) - 1
}

// Array declares n shared variables name[0..n-1] and returns the base index.
func (b *Builder) Array(name string, n int) int {
	base := len(b.vars)
	for i := 0; i < n; i++ {
		b.vars = append(b.vars, name+"["+strconv.Itoa(i)+"]")
	}
	return base
}

// SetClass declares the program's adaptivity class.
func (b *Builder) SetClass(c AdaptivityClass) { b.class = c }

// SetRecover declares the label at which the program's recover section
// starts (see Program.Recover). The label is resolved at Build time, so it
// may be declared before or after the call.
func (b *Builder) SetRecover(label string) { b.recover = label }

// Label defines a jump label at the current position. Redefining a label is
// a programming bug and fails the Build.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup && b.err == nil {
		b.err = fmt.Errorf("vmprog %s: label %q defined twice", b.name, name)
	}
	b.labels[name] = len(b.code)
}

// emit appends an instruction.
func (b *Builder) emit(in Instr) { b.code = append(b.code, in) }

// Const emits reg[a] = imm.
func (b *Builder) Const(a int, imm uint64) { b.emit(Instr{Op: OpConst, A: a, Imm: imm}) }

// Me emits reg[a] = process ID.
func (b *Builder) Me(a int) { b.emit(Instr{Op: OpMe, A: a}) }

// Procs emits reg[a] = N.
func (b *Builder) Procs(a int) { b.emit(Instr{Op: OpProcs, A: a}) }

// Add emits reg[a] = reg[x] + reg[y].
func (b *Builder) Add(a, x, y int) { b.emit(Instr{Op: OpAdd, A: a, B: x, C: y}) }

// Sub emits reg[a] = reg[x] - reg[y].
func (b *Builder) Sub(a, x, y int) { b.emit(Instr{Op: OpSub, A: a, B: x, C: y}) }

// Read emits reg[a] = vars[base + reg[idx]] (idx < 0 for no index).
func (b *Builder) Read(a, base, idx int) { b.emit(Instr{Op: OpRead, A: a, Base: base, Index: idx}) }

// Write emits a buffered write of reg[a] to vars[base + reg[idx]].
func (b *Builder) Write(base, idx, a int) { b.emit(Instr{Op: OpWrite, A: a, Base: base, Index: idx}) }

// Fence emits a full fence.
func (b *Builder) Fence() { b.emit(Instr{Op: OpFence}) }

// CAS emits reg[a] = CAS(vars[base + reg[idx]], old=reg[x], new=reg[y]).
func (b *Builder) CAS(a, base, idx, x, y int) {
	b.emit(Instr{Op: OpCAS, A: a, Base: base, Index: idx, B: x, C: y})
}

// CS emits the critical-section transition.
func (b *Builder) CS() { b.emit(Instr{Op: OpCS}) }

// Halt emits the end of the passage.
func (b *Builder) Halt() { b.emit(Instr{Op: OpHalt}) }

// Jump emits an unconditional jump to label.
func (b *Builder) Jump(label string) {
	b.fixups[len(b.code)] = label
	b.emit(Instr{Op: OpJump})
}

// JumpIfEq jumps to label when reg[x] == reg[y].
func (b *Builder) JumpIfEq(x, y int, label string) {
	b.fixups[len(b.code)] = label
	b.emit(Instr{Op: OpJumpIfEq, A: x, B: y})
}

// JumpIfNe jumps to label when reg[x] != reg[y].
func (b *Builder) JumpIfNe(x, y int, label string) {
	b.fixups[len(b.code)] = label
	b.emit(Instr{Op: OpJumpIfNe, A: x, B: y})
}

// JumpIfLt jumps to label when reg[x] < reg[y].
func (b *Builder) JumpIfLt(x, y int, label string) {
	b.fixups[len(b.code)] = label
	b.emit(Instr{Op: OpJumpIfLt, A: x, B: y})
}

// Build resolves labels and validates the program.
func (b *Builder) Build() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	code := make([]Instr, len(b.code))
	copy(code, b.code)
	for pos, label := range b.fixups {
		target, ok := b.labels[label]
		if !ok {
			return nil, fmt.Errorf("vmprog %s: undefined label %q", b.name, label)
		}
		code[pos].Target = target
	}
	p := &Program{Name: b.name, Vars: append([]string(nil), b.vars...), Code: code, Class: b.class}
	if b.recover != "" {
		rec, ok := b.labels[b.recover]
		if !ok {
			return nil, fmt.Errorf("vmprog %s: undefined recover label %q", b.name, b.recover)
		}
		p.Recover = rec
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
