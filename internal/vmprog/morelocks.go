package vmprog

import "fmt"

// This file ports the remaining internal/mutex algorithms to VM programs so
// that the static analyzer (internal/analysis, cmd/padlint) and the fast
// model-checking engine cover the full algorithm zoo. Every program encodes
// one passage (entry protocol, CS, exit protocol); queue-based locks are
// one-shot, matching the one-time mutual exclusion setting of the paper's
// lower bound.

// TTAS builds a test-and-test-and-set lock: spin on a plain read, attempt
// the CAS only when the lock looks free.
func TTAS() (*Program, error) {
	b := NewBuilder("ttas-vm")
	b.SetClass(ClassAdaptive)
	lock := b.Var("lock")
	const (
		rMe, rOne, rToken, rZero, rObs, rTmp = 0, 1, 2, 3, 4, 5
	)
	b.Me(rMe)
	b.Const(rOne, 1)
	b.Add(rToken, rMe, rOne) // token = me + 1
	b.Const(rZero, 0)
	b.Label("spin")
	b.Read(rTmp, lock, -1)
	b.JumpIfNe(rTmp, rZero, "spin")
	b.CAS(rObs, lock, -1, rZero, rToken)
	b.JumpIfNe(rObs, rZero, "spin")
	b.CS()
	b.Write(lock, -1, rZero)
	b.Fence()
	b.Halt()
	return b.Build()
}

// CASChain builds the one-shot adaptive CAS-chain lock: claim the first
// free slot, then wait for the previous slot's owner to release. At
// contention k every claim lands in slot < k, so the passage performs O(k)
// serializing CAS events - the Θ(k) fence price of adaptivity.
func CASChain(n int) (*Program, error) {
	b := NewBuilder("caschain-vm")
	b.SetClass(ClassAdaptive)
	slot := b.Array("slot", n)
	done := b.Array("done", n)
	const (
		rMe, rOne, rMe1, rZero, rObs, rM, rPrev = 0, 1, 2, 3, 4, 5, 6
	)
	b.Me(rMe)
	b.Const(rOne, 1)
	b.Add(rMe1, rMe, rOne)
	b.Const(rZero, 0)
	b.Const(rM, 0)
	b.Label("try")
	b.CAS(rObs, slot, rM, rZero, rMe1)
	b.JumpIfEq(rObs, rZero, "claimed")
	b.Add(rM, rM, rOne)
	b.Jump("try")
	b.Label("claimed")
	b.JumpIfEq(rM, rZero, "cs")
	b.Sub(rPrev, rM, rOne)
	b.Label("wait")
	b.Read(rObs, done, rPrev)
	b.JumpIfEq(rObs, rZero, "wait")
	b.Label("cs")
	b.CS()
	b.Write(done, rM, rOne)
	b.Fence()
	b.Halt()
	return b.Build()
}

// MCS builds the Mellor-Crummey-Scott queue lock (one-shot): append to the
// queue by a CAS-emulated swap of the tail, spin on the process's own
// locked flag, and hand the lock to the linked successor on exit.
func MCS(n int) (*Program, error) {
	b := NewBuilder("mcs-vm")
	b.SetClass(ClassNonAdaptive)
	tail := b.Var("tail")
	next := b.Array("next", n)
	locked := b.Array("locked", n)
	const (
		rMe, rOne, rMe1, rZero, rPred, rObs, rIdx, rTmp = 0, 1, 2, 3, 4, 5, 6, 7
	)
	b.Me(rMe)
	b.Const(rOne, 1)
	b.Add(rMe1, rMe, rOne)
	b.Const(rZero, 0)
	b.Write(next, rMe, rZero)
	b.Write(locked, rMe, rOne)
	// Swap tail -> me+1 (the CAS drains the buffer, so the node
	// initialization above is visible before the node is linked).
	b.Label("swap")
	b.Read(rPred, tail, -1)
	b.CAS(rObs, tail, -1, rPred, rMe1)
	b.JumpIfNe(rObs, rPred, "swap")
	b.JumpIfEq(rPred, rZero, "cs") // queue was empty
	// Link behind the predecessor and spin locally.
	b.Sub(rIdx, rPred, rOne)
	b.Write(next, rIdx, rMe1)
	b.Fence()
	b.Label("spin")
	b.Read(rTmp, locked, rMe)
	b.JumpIfEq(rTmp, rOne, "spin")
	b.Label("cs")
	b.CS()
	b.Read(rTmp, next, rMe)
	b.JumpIfNe(rTmp, rZero, "signal")
	// No known successor: try to swing the tail back to empty.
	b.CAS(rObs, tail, -1, rMe1, rZero)
	b.JumpIfEq(rObs, rMe1, "out")
	// A successor is linking itself; wait for the link.
	b.Label("waitlink")
	b.Read(rTmp, next, rMe)
	b.JumpIfEq(rTmp, rZero, "waitlink")
	b.Label("signal")
	b.Sub(rIdx, rTmp, rOne)
	b.Write(locked, rIdx, rZero)
	b.Fence()
	b.Label("out")
	b.Halt()
	return b.Build()
}

// Anderson builds the Anderson array-based queue lock, one-shot so slot
// indices never wrap: fetch-and-increment (a CAS retry loop) assigns a
// slot, slot 0 proceeds immediately, everyone else spins on grant[slot].
func Anderson(n int) (*Program, error) {
	b := NewBuilder("anderson-vm")
	b.SetClass(ClassNonAdaptive)
	ticket := b.Var("ticket")
	grant := b.Array("grant", n)
	const (
		rOne, rSlot, rZero, rObs, rNext, rTmp = 0, 1, 2, 3, 4, 5
	)
	b.Const(rOne, 1)
	b.Const(rZero, 0)
	b.Label("fai")
	b.Read(rSlot, ticket, -1)
	b.Add(rNext, rSlot, rOne)
	b.CAS(rObs, ticket, -1, rSlot, rNext)
	b.JumpIfNe(rObs, rSlot, "fai")
	b.JumpIfEq(rSlot, rZero, "cs")
	b.Label("spin")
	b.Read(rTmp, grant, rSlot)
	b.JumpIfEq(rTmp, rZero, "spin")
	b.Label("cs")
	b.CS()
	// Hand over to slot+1 unless this was the last possible slot.
	b.Add(rNext, rSlot, rOne)
	b.Procs(rTmp)
	b.JumpIfEq(rNext, rTmp, "out")
	b.Write(grant, rNext, rOne)
	b.Fence()
	b.Label("out")
	b.Halt()
	return b.Build()
}

// CLH builds the CLH implicit-queue lock, one-shot: process p owns node
// p+1, node 0 is the initially-free ghost node. Enqueue by a CAS-emulated
// swap of the tail, then spin on the predecessor's node.
func CLH(n int) (*Program, error) {
	b := NewBuilder("clh-vm")
	b.SetClass(ClassNonAdaptive)
	tail := b.Var("tail")
	lockedArr := b.Array("locked", n+1)
	const (
		rMe, rOne, rNode, rZero, rPred, rObs, rTmp = 0, 1, 2, 3, 4, 5, 6
	)
	b.Me(rMe)
	b.Const(rOne, 1)
	b.Add(rNode, rMe, rOne)
	b.Const(rZero, 0)
	b.Write(lockedArr, rNode, rOne)
	b.Fence()
	b.Label("swap")
	b.Read(rPred, tail, -1)
	b.CAS(rObs, tail, -1, rPred, rNode)
	b.JumpIfNe(rObs, rPred, "swap")
	b.Label("spin")
	b.Read(rTmp, lockedArr, rPred)
	b.JumpIfEq(rTmp, rOne, "spin")
	b.CS()
	b.Write(lockedArr, rNode, rZero)
	b.Fence()
	b.Halt()
	return b.Build()
}

// BurnsLynch builds the Burns-Lynch one-bit algorithm: a two-round scan,
// deferring to lower IDs (with restart) and waiting out higher IDs.
func BurnsLynch(n int) (*Program, error) {
	b := NewBuilder("burnslynch-vm")
	b.SetClass(ClassNonAdaptive)
	flag := b.Array("flag", n)
	const (
		rMe, rOne, rJ, rZero, rTmp, rN = 0, 1, 2, 3, 4, 5
	)
	b.Me(rMe)
	b.Const(rOne, 1)
	b.Const(rZero, 0)
	b.Procs(rN)
	b.Label("restart")
	b.Write(flag, rMe, rZero)
	b.Fence()
	b.Const(rJ, 0)
	b.Label("scan1") // round 1: defer to any lower-ID contender
	b.JumpIfEq(rJ, rMe, "raise")
	b.Read(rTmp, flag, rJ)
	b.JumpIfEq(rTmp, rOne, "restart")
	b.Add(rJ, rJ, rOne)
	b.Jump("scan1")
	b.Label("raise")
	b.Write(flag, rMe, rOne)
	b.Fence()
	b.Const(rJ, 0)
	b.Label("scan2") // re-scan the lower IDs; any contender forces a restart
	b.JumpIfEq(rJ, rMe, "round2")
	b.Read(rTmp, flag, rJ)
	b.JumpIfEq(rTmp, rOne, "restart")
	b.Add(rJ, rJ, rOne)
	b.Jump("scan2")
	b.Label("round2") // wait out every higher-ID process
	b.Add(rJ, rMe, rOne)
	b.Label("scan3")
	b.JumpIfEq(rJ, rN, "cs")
	b.Label("wait3")
	b.Read(rTmp, flag, rJ)
	b.JumpIfEq(rTmp, rOne, "wait3")
	b.Add(rJ, rJ, rOne)
	b.Jump("scan3")
	b.Label("cs")
	b.CS()
	b.Write(flag, rMe, rZero)
	b.Fence()
	b.Halt()
	return b.Build()
}

// Filter builds the n-process filter lock (n >= 2): n-1 levels, each
// filtering out one process; a process waits at a level while it is the
// victim and some other process is at the same level or higher. The level
// loop is rotated into do-while form (the exit test sits after the body's
// fence) so that every static path from entry to the CS crosses a fence -
// the shape the analyzer's unfenced-cs-path check certifies.
func Filter(n int) (*Program, error) {
	if n < 2 {
		return nil, fmt.Errorf("vmprog: filter requires n >= 2, got %d", n)
	}
	b := NewBuilder("filter-vm")
	b.SetClass(ClassNonAdaptive)
	level := b.Array("level", n)
	victim := b.Array("victim", n) // victim[0] unused
	const (
		rMe, rOne, rLvl, rZero, rTmp, rN, rK, rMe1 = 0, 1, 2, 3, 4, 5, 6, 7
	)
	b.Me(rMe)
	b.Const(rOne, 1)
	b.Const(rZero, 0)
	b.Procs(rN)
	b.Add(rMe1, rMe, rOne)
	b.Const(rLvl, 1)
	b.Label("levels")
	b.Write(level, rMe, rLvl)
	b.Write(victim, rLvl, rMe1)
	b.Fence()
	b.Label("spinlvl")
	b.Read(rTmp, victim, rLvl)
	b.JumpIfNe(rTmp, rMe1, "nextlvl") // someone else became the victim
	b.Const(rK, 0)
	b.Label("scank")
	b.JumpIfEq(rK, rN, "nextlvl") // no conflict anywhere
	b.JumpIfEq(rK, rMe, "skipk")
	b.Read(rTmp, level, rK)
	b.JumpIfLt(rTmp, rLvl, "skipk")
	b.Jump("spinlvl") // conflict: k is at this level or higher
	b.Label("skipk")
	b.Add(rK, rK, rOne)
	b.Jump("scank")
	b.Label("nextlvl")
	b.Add(rLvl, rLvl, rOne)
	b.JumpIfLt(rLvl, rN, "levels") // more levels to climb
	b.CS()
	b.Write(level, rMe, rZero)
	b.Fence()
	b.Halt()
	return b.Build()
}

// Tournament4 builds the binary tournament of Peterson locks for exactly 4
// processes: two levels of two-process competitions, heap-indexed nodes
// (root 1; leaves of process p sit under node 2+p/2). Per-node flags live
// in one array indexed by 2*node+role. The VM has no shift instruction, so
// the per-level (node, flag index, opponent role) constants come from a
// branch table on the process ID.
func Tournament4() (*Program, error) {
	b := NewBuilder("tournament-vm")
	b.SetClass(ClassNonAdaptive)
	flag := b.Array("flag", 8) // flag[2*node+role], nodes 1..3
	turn := b.Array("turn", 4) // turn[node], nodes 1..3
	const (
		rMe, rOne, rZero, rTmp, rNode, rFi, rOi, rOth = 0, 1, 2, 3, 4, 5, 6, 7
	)
	b.Me(rMe)
	b.Const(rOne, 1)
	b.Const(rZero, 0)
	// Level-1 constants: node, own flag index fi=2*node+role=4+me,
	// opponent flag index oi, opponent role oth.
	b.Const(rTmp, 1)
	b.JumpIfLt(rMe, rTmp, "m0") // me == 0
	b.JumpIfEq(rMe, rTmp, "m1")
	b.Const(rTmp, 2)
	b.JumpIfEq(rMe, rTmp, "m2")
	b.Const(rNode, 3) // me == 3
	b.Const(rFi, 7)
	b.Const(rOi, 6)
	b.Const(rOth, 0)
	b.Jump("l1")
	b.Label("m0")
	b.Const(rNode, 2)
	b.Const(rFi, 4)
	b.Const(rOi, 5)
	b.Const(rOth, 1)
	b.Jump("l1")
	b.Label("m1")
	b.Const(rNode, 2)
	b.Const(rFi, 5)
	b.Const(rOi, 4)
	b.Const(rOth, 0)
	b.Jump("l1")
	b.Label("m2")
	b.Const(rNode, 3)
	b.Const(rFi, 6)
	b.Const(rOi, 7)
	b.Const(rOth, 1)
	b.Label("l1")
	b.Write(flag, rFi, rOne)
	b.Write(turn, rNode, rOth)
	b.Fence()
	b.Label("spin1")
	b.Read(rTmp, flag, rOi)
	b.JumpIfNe(rTmp, rOne, "l1done")
	b.Read(rTmp, turn, rNode)
	b.JumpIfEq(rTmp, rOth, "spin1")
	b.Label("l1done")
	// Level-2 (root) constants: role = me/2, fi = 2+role.
	b.Const(rTmp, 2)
	b.JumpIfLt(rMe, rTmp, "low")
	b.Const(rFi, 3)
	b.Const(rOi, 2)
	b.Const(rOth, 0)
	b.Jump("l2")
	b.Label("low")
	b.Const(rFi, 2)
	b.Const(rOi, 3)
	b.Const(rOth, 1)
	b.Label("l2")
	b.Const(rNode, 1)
	b.Write(flag, rFi, rOne)
	b.Write(turn, rNode, rOth)
	b.Fence()
	b.Label("spin2")
	b.Read(rTmp, flag, rOi)
	b.JumpIfNe(rTmp, rOne, "cs")
	b.Read(rTmp, turn, rNode)
	b.JumpIfEq(rTmp, rOth, "spin2")
	b.Label("cs")
	b.CS()
	// Release top-down: root flag (still in rFi), then the leaf-level
	// flag, whose index is simply 4+me.
	b.Write(flag, rFi, rZero)
	b.Const(rTmp, 4)
	b.Add(rFi, rMe, rTmp)
	b.Write(flag, rFi, rZero)
	b.Fence()
	b.Halt()
	return b.Build()
}

// Synthetic builds the adaptive read/write splitter-chain lock of
// internal/mutex/synthetic.go as a VM program: walk a chain of
// Moir-Anderson splitters to claim a slot (the seal/confirm/abandon
// protocol arbitrates claims against scanners), then resolve every lower
// slot in order. withFences selects the TSO-correct variant; the fenceless
// one is the analyzer's canonical broken program - its splitter reads its
// own buffered x-write (store forwarding), so two processes can both win
// splitter 0.
func Synthetic(n int, withFences bool) (*Program, error) {
	name := "synthetic-vm"
	if !withFences {
		name = "synthetic-nofence-vm"
	}
	if n < 1 {
		return nil, fmt.Errorf("vmprog: synthetic requires n >= 1, got %d", n)
	}
	length := 2 * n // enough chain for every process to stop in practice
	b := NewBuilder(name)
	b.SetClass(ClassAdaptive)
	x := b.Array("x", length)
	y := b.Array("y", length)
	owner := b.Array("owner", length)
	seal := b.Array("seal", length)
	confirmed := b.Array("confirmed", length)
	abandoned := b.Array("abandoned", length)
	done := b.Array("done", n)
	const (
		rMe1, rM, rJ, rZero, rOne, rTmp, rO, rL = 0, 1, 2, 3, 4, 5, 6, 7
	)
	fence := func() {
		if withFences {
			b.Fence()
		}
	}
	b.Me(rTmp)
	b.Const(rOne, 1)
	b.Add(rMe1, rTmp, rOne)
	b.Const(rZero, 0)
	b.Const(rL, uint64(length))
	b.Const(rM, 0)
	// Claim phase: walk the splitter chain.
	b.Label("claim")
	b.JumpIfEq(rM, rL, "stuck")
	b.Write(x, rM, rMe1)
	fence()
	b.Read(rTmp, y, rM)
	b.JumpIfEq(rTmp, rOne, "right") // splitter taken: move right
	b.Write(y, rM, rOne)
	fence()
	b.Read(rTmp, x, rM)
	b.JumpIfNe(rTmp, rMe1, "right") // lost the race: move right
	// Stopped at m: claim unless a scanner already sealed the slot.
	b.Write(owner, rM, rMe1)
	fence()
	b.Read(rTmp, seal, rM)
	b.JumpIfEq(rTmp, rOne, "sealed")
	b.Write(confirmed, rM, rOne)
	fence()
	b.Jump("scan")
	b.Label("sealed")
	b.Write(abandoned, rM, rOne)
	fence()
	b.Label("right")
	b.Add(rM, rM, rOne)
	b.Jump("claim")
	// A chain this long cannot be exhausted by n processes; if it ever
	// were, park on a harmless read instead of entering the CS.
	b.Label("stuck")
	b.Read(rTmp, x, rZero)
	b.Jump("stuck")
	// Slot order: seal and resolve every lower slot.
	b.Label("scan")
	b.Const(rJ, 0)
	b.Label("scanloop")
	b.JumpIfEq(rJ, rM, "cs")
	b.Write(seal, rJ, rOne)
	fence()
	b.Read(rO, owner, rJ)
	b.JumpIfEq(rO, rZero, "nextj") // unclaimed and sealed: skip
	b.Label("resolve")
	b.Read(rTmp, abandoned, rJ)
	b.JumpIfEq(rTmp, rOne, "nextj")
	b.Read(rTmp, confirmed, rJ)
	b.JumpIfNe(rTmp, rOne, "resolve")
	b.Sub(rO, rO, rOne) // wait for done[owner-1]
	b.Label("waitdone")
	b.Read(rTmp, done, rO)
	b.JumpIfEq(rTmp, rZero, "waitdone")
	b.Label("nextj")
	b.Add(rJ, rJ, rOne)
	b.Jump("scanloop")
	b.Label("cs")
	b.CS()
	b.Sub(rTmp, rMe1, rOne)
	b.Write(done, rTmp, rOne)
	fence()
	b.Halt()
	return b.Build()
}
