package vmprog

import (
	"context"
	"testing"

	"priceadaptive/internal/tso"
)

// checkProgs are small unreduced workloads the white-box parallel tests run;
// the registry-wide differential with reduction facts lives in
// internal/check (TestParallelDifferential), which can import the analyzer.
var checkProgs = []struct {
	name string
	n    int
	pso  bool
}{
	{"peterson", 2, false},
	{"peterson-nofence", 2, false}, // violating
	{"tas", 2, false},
	{"bakery", 2, true},
	{"filter", 3, false},
}

func buildEngine(t *testing.T, name string, n int, pso bool) *Engine {
	t.Helper()
	p, err := Lookup(name, n)
	if err != nil {
		t.Fatalf("Lookup(%s): %v", name, err)
	}
	ord := tso.TSO
	if pso {
		ord = tso.PSO
	}
	e, err := NewEngineOrdering(p, n, ord)
	if err != nil {
		t.Fatalf("NewEngineOrdering(%s): %v", name, err)
	}
	return e
}

func replayViolation(t *testing.T, name string, n int, pso bool, sched []tso.Decision) {
	t.Helper()
	e := buildEngine(t, name, n, pso)
	st := e.Initial()
	for i, d := range sched {
		if err := e.Apply(st, d); err != nil {
			t.Fatalf("%s: schedule step %d does not replay: %v", name, i, err)
		}
	}
	if !e.Violated(st) {
		t.Fatalf("%s: replayed schedule does not end in a violation", name)
	}
}

// TestParallelMatchesSequential runs the parallel frontier engine at several
// worker counts against the sequential DFS on unreduced engines: verdicts
// must agree everywhere, counts must agree across worker counts always and
// with the sequential engine on complete non-violating runs (where the
// explored set is the full reachable space and thus order-independent), and
// every parallel counterexample must replay on a fresh sequential engine.
func TestParallelMatchesSequential(t *testing.T) {
	ctx := context.Background()
	for _, tc := range checkProgs {
		seq, err := buildEngine(t, tc.name, tc.n, tc.pso).Check(ctx, 1<<21)
		if err != nil {
			t.Fatalf("%s: sequential: %v", tc.name, err)
		}
		var first *CheckResult
		for _, workers := range []int{1, 2, 3} {
			par, err := buildEngine(t, tc.name, tc.n, tc.pso).CheckParallel(ctx, ParallelOpts{Workers: workers, MaxStates: 1 << 21})
			if err != nil {
				t.Fatalf("%s w=%d: parallel: %v", tc.name, workers, err)
			}
			if par.Violation != seq.Violation || par.Complete != seq.Complete {
				t.Fatalf("%s w=%d: verdict mismatch: parallel violation=%v complete=%v, sequential %v/%v",
					tc.name, workers, par.Violation, par.Complete, seq.Violation, seq.Complete)
			}
			if par.Violation {
				replayViolation(t, tc.name, tc.n, tc.pso, par.Schedule)
			} else if par.Complete {
				if par.States != seq.States || par.Transitions != seq.Transitions {
					t.Fatalf("%s w=%d: counts diverge: parallel %d/%d, sequential %d/%d",
						tc.name, workers, par.States, par.Transitions, seq.States, seq.Transitions)
				}
			}
			if first == nil {
				first = par
				continue
			}
			if par.States != first.States || par.Transitions != first.Transitions ||
				par.Violation != first.Violation || len(par.Schedule) != len(first.Schedule) {
				t.Fatalf("%s: results differ across worker counts: w=%d got %d/%d, w=1 got %d/%d",
					tc.name, workers, par.States, par.Transitions, first.States, first.Transitions)
			}
			for i := range par.Schedule {
				if par.Schedule[i] != first.Schedule[i] {
					t.Fatalf("%s: schedules differ across worker counts at step %d", tc.name, i)
				}
			}
		}
	}
}

// TestParallelCrossShardRouting pins the hash-partitioned routing: with more
// than one shard, successor states land on shards other than their parent's
// (the cross-shard handoff every multi-worker run exercises), and the
// crumbs reconstructed across that handoff still replay.
func TestParallelCrossShardRouting(t *testing.T) {
	ctx := context.Background()
	for _, workers := range []int{2, 3, 4} {
		e := buildEngine(t, "peterson", 2, false)
		res, err := e.CheckParallel(ctx, ParallelOpts{Workers: workers})
		if err != nil {
			t.Fatalf("w=%d: %v", workers, err)
		}
		if res.crossShard == 0 {
			t.Fatalf("w=%d: no successor crossed shards; routing is not partitioning the hash space", workers)
		}
		t.Logf("w=%d: %d/%d successors handed off across shards", workers, res.crossShard, res.Transitions)
	}
	// One shard cannot hand off.
	e := buildEngine(t, "peterson", 2, false)
	res, err := e.CheckParallel(ctx, ParallelOpts{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.crossShard != 0 {
		t.Fatalf("w=1: %d successors crossed shards out of one shard", res.crossShard)
	}
}

// TestParallelRecoverableMatchesSequential compares CheckRecoverableParallel
// against the sequential CheckRecoverable on crash-enabled workloads:
// verdicts agree, counts agree on complete runs (the crash exploration has
// no ample reduction, so the explored graph is the full crash-bounded
// space either way), and counterexample schedules replay.
func TestParallelRecoverableMatchesSequential(t *testing.T) {
	ctx := context.Background()
	crash := CrashOpts{MaxCrashes: 2, MaxPerProc: 1}
	for _, name := range []string{"rtas", "tas", "peterson", "anderson", "mcs"} {
		p, err := Lookup(name, 2)
		if err != nil {
			t.Fatalf("Lookup(%s): %v", name, err)
		}
		mk := func() *Engine {
			e, err := NewEngineOrdering(p, 2, tso.TSO)
			if err != nil {
				t.Fatal(err)
			}
			return e
		}
		seq, err := mk().CheckRecoverable(ctx, 1<<21, crash)
		if err != nil {
			t.Fatalf("%s: sequential: %v", name, err)
		}
		var first *RecovResult
		for _, workers := range []int{1, 2, 3} {
			par, err := mk().CheckRecoverableParallel(ctx, ParallelOpts{Workers: workers, MaxStates: 1 << 21}, crash)
			if err != nil {
				t.Fatalf("%s w=%d: parallel: %v", name, workers, err)
			}
			if par.Recoverable != seq.Recoverable || par.Complete != seq.Complete {
				t.Fatalf("%s w=%d: verdict mismatch: parallel recoverable=%v complete=%v, sequential %v/%v",
					name, workers, par.Recoverable, par.Complete, seq.Recoverable, seq.Complete)
			}
			if par.Complete && !par.Violation && !par.Fault && !seq.Violation && !seq.Fault {
				if par.States != seq.States || par.Transitions != seq.Transitions {
					t.Fatalf("%s w=%d: counts diverge: parallel %d/%d, sequential %d/%d",
						name, workers, par.States, par.Transitions, seq.States, seq.Transitions)
				}
			}
			replayRecovWitness(t, name, par)
			if first == nil {
				first = par
				continue
			}
			if par.States != first.States || par.Transitions != first.Transitions ||
				par.Violation != first.Violation || par.Stuck != first.Stuck || par.Fault != first.Fault {
				t.Fatalf("%s: results differ across worker counts (w=%d vs w=1)", name, workers)
			}
			if !schedEqual(par.ViolationSchedule, first.ViolationSchedule) ||
				!schedEqual(par.StuckSchedule, first.StuckSchedule) ||
				!schedEqual(par.FaultSchedule, first.FaultSchedule) {
				t.Fatalf("%s: witness schedules differ across worker counts (w=%d vs w=1)", name, workers)
			}
		}
	}
}

func schedEqual(a, b []tso.Decision) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// replayRecovWitness replays whichever counterexample the result carries on
// a fresh unreduced engine and asserts it demonstrates its class.
func replayRecovWitness(t *testing.T, name string, res *RecovResult) {
	t.Helper()
	p, err := Lookup(name, 2)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngineOrdering(p, 2, tso.TSO)
	if err != nil {
		t.Fatal(err)
	}
	switch {
	case res.Violation:
		st := e.Initial()
		for i, d := range res.ViolationSchedule {
			if err := e.Apply(st, d); err != nil {
				t.Fatalf("%s: violation schedule step %d: %v", name, i, err)
			}
		}
		if !e.Violated(st) {
			t.Fatalf("%s: violation schedule does not end in a violation", name)
		}
	case res.Fault:
		st := e.Initial()
		n := len(res.FaultSchedule)
		for i, d := range res.FaultSchedule[:n-1] {
			if err := e.Apply(st, d); err != nil {
				t.Fatalf("%s: fault schedule step %d: %v", name, i, err)
			}
		}
		if err := e.Apply(st, res.FaultSchedule[n-1]); err == nil {
			t.Fatalf("%s: fault schedule's final decision applied cleanly", name)
		}
	case res.Stuck:
		st := e.Initial()
		for i, d := range res.StuckSchedule {
			if err := e.Apply(st, d); err != nil {
				t.Fatalf("%s: stuck schedule step %d: %v", name, i, err)
			}
		}
		if e.AllDone(st) || e.Violated(st) {
			t.Fatalf("%s: stuck schedule ends done=%v violated=%v", name, e.AllDone(st), e.Violated(st))
		}
	}
}

// TestBitstateProbabilistic pins the bitstate mode's contract: the result is
// always flagged Probabilistic, a collision-free run (bit array far larger
// than the state space) matches the exact engine's counts, and violations it
// finds replay exactly.
func TestBitstateProbabilistic(t *testing.T) {
	ctx := context.Background()
	exact, err := buildEngine(t, "peterson", 2, false).Check(ctx, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	res, err := buildEngine(t, "peterson", 2, false).CheckParallel(ctx, ParallelOpts{Workers: 1, BitstateBits: 22})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Probabilistic {
		t.Fatal("bitstate result not flagged Probabilistic")
	}
	if res.Violation {
		t.Fatal("bitstate found a violation in peterson")
	}
	if res.States != exact.States || res.Transitions != exact.Transitions {
		t.Fatalf("collision-free bitstate counts %d/%d differ from exact %d/%d",
			res.States, res.Transitions, exact.States, exact.Transitions)
	}
	viol, err := buildEngine(t, "peterson-nofence", 2, false).CheckParallel(ctx, ParallelOpts{Workers: 2, BitstateBits: 22})
	if err != nil {
		t.Fatal(err)
	}
	if !viol.Violation {
		t.Fatal("bitstate missed the peterson-nofence violation")
	}
	replayViolation(t, "peterson-nofence", 2, false, viol.Schedule)
	if _, err := buildEngine(t, "rtas", 2, false).CheckRecoverableParallel(ctx,
		ParallelOpts{Workers: 1, BitstateBits: 22}, CrashOpts{MaxCrashes: 1}); err == nil {
		t.Fatal("bitstate recoverability was not rejected")
	}
}
