package vmprog_test

import (
	"context"
	"fmt"

	"priceadaptive/internal/tso"
	"priceadaptive/internal/vmprog"
)

// Example verifies Peterson's lock completely over every TSO schedule, then
// shows the fence-free variant failing with a machine-minimized
// counterexample.
func Example() {
	eng, err := vmprog.NewEngineOrdering(vmprog.MustPeterson(true), 2, tso.TSO)
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := eng.Check(context.Background(), 0)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("fenced Peterson: complete=%v violation=%v\n", res.Complete, res.Violation)

	engNF, err := vmprog.NewEngineOrdering(vmprog.MustPeterson(false), 2, tso.TSO)
	if err != nil {
		fmt.Println(err)
		return
	}
	resNF, err := engNF.Check(context.Background(), 0)
	if err != nil {
		fmt.Println(err)
		return
	}
	min, err := engNF.Minimize(resNF.Schedule)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("fence-free Peterson: violation=%v, minimized to %d decisions\n",
		resNF.Violation, len(min))
	// Output:
	// fenced Peterson: complete=true violation=false
	// fence-free Peterson: violation=true, minimized to 13 decisions
}
