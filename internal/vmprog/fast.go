package vmprog

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"

	"priceadaptive/internal/tso"
)

// bufEnt is one buffered write in the fast engine.
type bufEnt struct {
	v int
	x uint64
}

// PState is the complete state of one process: flat, comparable-by-content,
// and cheap to clone. A started, unfinished process is always parked at an
// event instruction (its local register/jump instructions have already been
// applied), mirroring how the goroutine engine parks programs at their next
// posted operation.
type PState struct {
	PC      int
	Regs    [NumRegs]uint64
	Buf     []bufEnt
	Fencing bool
	Started bool
	Done    bool
	InExit  bool // CS executed, Exit pending at OpHalt
}

// BufLen returns the number of buffered, uncommitted writes.
func (p *PState) BufLen() int { return len(p.Buf) }

// BufVar returns the variable index of the i-th buffered write (0 is the
// oldest, the only write TSO may commit next).
func (p *PState) BufVar(i int) int { return p.Buf[i].v }

// BufVal returns the pending value of the i-th buffered write.
func (p *PState) BufVal(i int) uint64 { return p.Buf[i].x }

// State is a full machine state of the fast engine.
type State struct {
	Mem   []uint64
	Procs []PState
}

// Clone returns a deep copy.
func (s *State) Clone() *State {
	ns := &State{
		Mem:   append([]uint64(nil), s.Mem...),
		Procs: make([]PState, len(s.Procs)),
	}
	copy(ns.Procs, s.Procs)
	for i := range ns.Procs {
		ns.Procs[i].Buf = append([]bufEnt(nil), s.Procs[i].Buf...)
	}
	return ns
}

// PruneFacts are static facts about a program, computed by the analyzer in
// internal/analysis, that let the model checker merge equivalent
// interleavings. Every field is a *guarantee*: a wrong fact would make the
// exploration unsound, so facts are only produced by the buffered-write
// dataflow whose soundness the differential tests in internal/check verify.
type PruneFacts struct {
	// EmptyBufAt[pc] reports that the write buffer is provably empty
	// whenever a process is parked at pc: no path from the program's entry
	// to pc carries a write that is not followed by a fence or CAS.
	EmptyBufAt []bool
	// AmpleAt[pc] reports that stepping a process parked at pc is invisible
	// and globally independent (an OpFence or OpHalt with a provably empty
	// buffer whose continuation cannot park at OpCS, the fence case
	// additionally outside every CFG cycle), so the checker may take it as
	// the sole decision without exploring interleavings with other
	// processes.
	AmpleAt []bool
	// AmpleStart reports that starting a process (advancing it through its
	// leading local instructions) cannot park it at OpCS, making the start
	// transition invisible too.
	AmpleStart bool
}

// Engine executes a VM program under the TSO (or PSO) operational semantics
// with explicit, clonable state.
type Engine struct {
	prog  *Program
	n     int
	pso   bool
	facts *PruneFacts
}

// NewEngine builds an engine for n processes. pso selects partial store
// ordering (out-of-order commits allowed).
func NewEngine(p *Program, n int, pso bool) (*Engine, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("vmprog: n must be positive, got %d", n)
	}
	return &Engine{prog: p, n: n, pso: pso}, nil
}

// UsePruning installs static pruning facts (see PruneFacts). Passing nil
// disables pruning. The facts must describe this engine's program.
func (e *Engine) UsePruning(f *PruneFacts) error {
	if f == nil {
		e.facts = nil
		return nil
	}
	if len(f.EmptyBufAt) != len(e.prog.Code) || len(f.AmpleAt) != len(e.prog.Code) {
		return fmt.Errorf("vmprog: pruning facts cover %d/%d instructions, program has %d",
			len(f.EmptyBufAt), len(f.AmpleAt), len(e.prog.Code))
	}
	e.facts = f
	return nil
}

// Program returns the program the engine executes.
func (e *Engine) Program() *Program { return e.prog }

// NumProcs returns the engine's process count.
func (e *Engine) NumProcs() int { return e.n }

// Initial returns the initial state: memory zeroed, no process started.
func (e *Engine) Initial() *State {
	return &State{
		Mem:   make([]uint64, len(e.prog.Vars)),
		Procs: make([]PState, e.n),
	}
}

// errInvalidDecision reports a decision that is not enabled in the state.
var errInvalidDecision = errors.New("vmprog: decision not enabled")

// advance executes register and control-flow instructions until the process
// parks at an event instruction or OpHalt. Local instructions are free in
// the memory model, exactly as Go code between two Proc calls runs inside
// the program goroutine on the goroutine engine.
func (e *Engine) advance(p *PState, id int) error {
	for {
		in := e.prog.Code[p.PC]
		switch in.Op {
		case OpConst:
			p.Regs[in.A] = in.Imm
		case OpMe:
			p.Regs[in.A] = uint64(id)
		case OpProcs:
			p.Regs[in.A] = uint64(e.n)
		case OpAdd:
			p.Regs[in.A] = p.Regs[in.B] + p.Regs[in.C]
		case OpSub:
			p.Regs[in.A] = p.Regs[in.B] - p.Regs[in.C]
		case OpJump:
			p.PC = in.Target
			continue
		case OpJumpIfEq:
			if p.Regs[in.A] == p.Regs[in.B] {
				p.PC = in.Target
				continue
			}
		case OpJumpIfNe:
			if p.Regs[in.A] != p.Regs[in.B] {
				p.PC = in.Target
				continue
			}
		case OpJumpIfLt:
			if p.Regs[in.A] < p.Regs[in.B] {
				p.PC = in.Target
				continue
			}
		default:
			// Event instruction or Halt: park here.
			return nil
		}
		p.PC++
	}
}

// bufLookup returns the pending buffered write to variable vi, if any.
func bufLookup(p *PState, vi int) (uint64, bool) {
	for i := range p.Buf {
		if p.Buf[i].v == vi {
			return p.Buf[i].x, true
		}
	}
	return 0, false
}

// bufPush coalesces a write into the buffer (TSO: one entry per variable).
func bufPush(p *PState, vi int, x uint64) {
	for i := range p.Buf {
		if p.Buf[i].v == vi {
			p.Buf[i].x = x
			return
		}
	}
	p.Buf = append(p.Buf, bufEnt{v: vi, x: x})
}

// commitAt makes the i-th buffered write visible.
func commitAt(s *State, p *PState, i int) {
	w := p.Buf[i]
	s.Mem[w.v] = w.x
	p.Buf = append(p.Buf[:i], p.Buf[i+1:]...)
}

// Step lets process id execute its next event, mirroring
// tso.Simulator.Step: Enter for an unstarted process, a commit while
// fencing (or draining for a CAS) with a non-empty buffer, otherwise the
// parked event instruction.
func (e *Engine) Step(s *State, id int) error {
	if id < 0 || id >= e.n {
		return errInvalidDecision
	}
	p := &s.Procs[id]
	if p.Done {
		return errInvalidDecision
	}
	if !p.Started {
		p.Started = true
		return e.advance(p, id)
	}
	if p.Fencing {
		if len(p.Buf) > 0 {
			commitAt(s, p, 0)
			return nil
		}
		// EndFence.
		p.Fencing = false
		p.PC++
		return e.advance(p, id)
	}
	in := e.prog.Code[p.PC]
	switch in.Op {
	case OpRead:
		vi, err := e.prog.varIndex(in, &p.Regs)
		if err != nil {
			return err
		}
		if x, ok := bufLookup(p, vi); ok {
			p.Regs[in.A] = x
		} else {
			p.Regs[in.A] = s.Mem[vi]
		}
		p.PC++
		return e.advance(p, id)
	case OpWrite:
		vi, err := e.prog.varIndex(in, &p.Regs)
		if err != nil {
			return err
		}
		bufPush(p, vi, p.Regs[in.A])
		p.PC++
		return e.advance(p, id)
	case OpFence:
		p.Fencing = true
		return nil
	case OpCAS:
		if len(p.Buf) > 0 {
			// Serializing: drain the buffer first, one commit per step.
			commitAt(s, p, 0)
			return nil
		}
		vi, err := e.prog.varIndex(in, &p.Regs)
		if err != nil {
			return err
		}
		observed := s.Mem[vi]
		if observed == p.Regs[in.B] {
			s.Mem[vi] = p.Regs[in.C]
		}
		p.Regs[in.A] = observed
		p.PC++
		return e.advance(p, id)
	case OpCS:
		p.InExit = true
		p.PC++
		return e.advance(p, id)
	case OpHalt:
		p.Done = true
		return nil
	default:
		return fmt.Errorf("vmprog: parked at non-event instruction %d", int(in.Op))
	}
}

// Commit makes a buffered write of process id visible. varIdx selects the
// variable (PSO); pass -1 for the oldest write (the only legal choice under
// TSO). Like tso.Simulator.Commit it is also legal while the process is
// executing a fence (the adversary committing on the process's behalf).
func (e *Engine) Commit(s *State, id int, varIdx int) error {
	p := &s.Procs[id]
	if len(p.Buf) == 0 {
		return errInvalidDecision
	}
	if varIdx < 0 || p.Buf[0].v == varIdx {
		commitAt(s, p, 0)
		return nil
	}
	if !e.pso {
		return fmt.Errorf("vmprog: out-of-order commit requires PSO")
	}
	for i := range p.Buf {
		if p.Buf[i].v == varIdx {
			commitAt(s, p, i)
			return nil
		}
	}
	return errInvalidDecision
}

// PendingCS reports whether process id's next event is the CS transition.
func (e *Engine) PendingCS(s *State, id int) bool {
	p := &s.Procs[id]
	if !p.Started || p.Done || p.Fencing {
		return false
	}
	return e.prog.Code[p.PC].Op == OpCS
}

// Violated reports whether two CS events are simultaneously enabled (the
// paper's exclusion failure).
func (e *Engine) Violated(s *State) bool {
	count := 0
	for id := range s.Procs {
		if e.PendingCS(s, id) {
			count++
		}
	}
	return count >= 2
}

// AllDone reports whether every process completed its passage.
func (e *Engine) AllDone(s *State) bool {
	for i := range s.Procs {
		if !s.Procs[i].Done {
			return false
		}
	}
	return true
}

// Apply executes a tso.Decision on the state, for replaying schedules
// recorded against the goroutine engine.
func (e *Engine) Apply(s *State, d tso.Decision) error {
	if d.Commit {
		varIdx := -1
		if d.VarPlus1 > 0 {
			varIdx = d.VarPlus1 - 1
		}
		return e.Commit(s, int(d.P), varIdx)
	}
	return e.Step(s, int(d.P))
}

// hash fingerprints a state.
func (e *Engine) hash(s *State) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w := func(x uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(x >> (8 * i))
		}
		h.Write(buf[:])
	}
	for _, m := range s.Mem {
		w(m)
	}
	for i := range s.Procs {
		p := &s.Procs[i]
		flags := uint64(p.PC) << 4
		if p.Fencing {
			flags |= 1
		}
		if p.Started {
			flags |= 2
		}
		if p.Done {
			flags |= 4
		}
		if p.InExit {
			flags |= 8
		}
		w(flags)
		for _, r := range p.Regs {
			w(r)
		}
		w(uint64(len(p.Buf)))
		for _, b := range p.Buf {
			w(uint64(b.v))
			w(b.x)
		}
	}
	return h.Sum64()
}

// CheckResult summarizes an exhaustive exploration by the fast engine.
type CheckResult struct {
	// States is the number of distinct states visited.
	States int
	// Transitions is the number of decisions applied.
	Transitions int
	// Complete reports whether the full reachable state space was
	// explored.
	Complete bool
	// Violation reports whether an exclusion violation was found.
	Violation bool
	// Schedule reproduces the violation (also applicable to the goroutine
	// engine via the same decisions).
	Schedule []tso.Decision
	// AmpleSteps counts states where static pruning facts reduced the
	// decision set to a single invisible transition (0 without UsePruning).
	AmpleSteps int
}

// ampleDecision returns an invisible, globally independent decision that can
// be taken as the only transition from s, if the installed static facts
// certify one: starting a process whose leading local code cannot park at
// the CS, or stepping a fence/halt at a program point with a provably empty
// write buffer. Such a transition commutes with every other enabled
// transition, leaves the Violated predicate unchanged, and stays enabled
// under them, so exploring it alone preserves all reachable violations.
func (e *Engine) ampleDecision(s *State) (tso.Decision, bool) {
	if e.facts == nil {
		return tso.Decision{}, false
	}
	for id := range s.Procs {
		p := &s.Procs[id]
		if p.Done {
			continue
		}
		if !p.Started {
			if e.facts.AmpleStart {
				return tso.Decision{P: tso.ProcID(id)}, true
			}
			continue
		}
		// Dynamic double-check: an ample point promises an empty buffer;
		// if the fact were ever wrong we fall back to full expansion
		// rather than lose commit interleavings.
		if len(p.Buf) > 0 || !e.facts.AmpleAt[p.PC] {
			continue
		}
		if p.Fencing || e.prog.Code[p.PC].Op == OpFence || e.prog.Code[p.PC].Op == OpHalt {
			return tso.Decision{P: tso.ProcID(id)}, true
		}
	}
	return tso.Decision{}, false
}

// Check explores the reachable state space exhaustively (bounded by
// maxStates) and reports the first exclusion violation. Unlike the
// replay-based checker in package check, states are true snapshots: spin
// loops revisit identical states and the exploration terminates without any
// spin-collapsing heuristic. Cancelling ctx aborts the exploration with the
// context's error.
func (e *Engine) Check(ctx context.Context, maxStates int) (*CheckResult, error) {
	if maxStates <= 0 {
		maxStates = 1 << 20
	}
	res := &CheckResult{Complete: true}
	seen := make(map[uint64]bool)
	type node struct {
		st   *State
		path []tso.Decision
	}
	stack := []node{{st: e.Initial()}}
	for len(stack) > 0 {
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		h := e.hash(nd.st)
		if seen[h] {
			continue
		}
		seen[h] = true
		res.States++
		if res.States&0xfff == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if e.Violated(nd.st) {
			res.Violation = true
			res.Schedule = nd.path
			res.Complete = false
			return res, nil
		}
		if res.States > maxStates {
			res.Complete = false
			return res, nil
		}
		var choices []tso.Decision
		if d, ok := e.ampleDecision(nd.st); ok {
			choices = []tso.Decision{d}
			res.AmpleSteps++
		} else {
			choices = e.decisions(nd.st)
		}
		for _, d := range choices {
			child := nd.st.Clone()
			if err := e.Apply(child, d); err != nil {
				return nil, fmt.Errorf("vmprog: check: %w", err)
			}
			res.Transitions++
			path := make([]tso.Decision, len(nd.path)+1)
			copy(path, nd.path)
			path[len(nd.path)] = d
			stack = append(stack, node{st: child, path: path})
		}
	}
	return res, nil
}

// decisions enumerates the enabled scheduling decisions in a state.
func (e *Engine) decisions(s *State) []tso.Decision {
	var out []tso.Decision
	for id := range s.Procs {
		p := &s.Procs[id]
		if !p.Done {
			out = append(out, tso.Decision{P: tso.ProcID(id)})
		}
		if len(p.Buf) > 0 && !p.Fencing {
			if e.pso {
				for _, b := range p.Buf {
					out = append(out, tso.Decision{P: tso.ProcID(id), Commit: true, VarPlus1: b.v + 1})
				}
			} else {
				out = append(out, tso.Decision{P: tso.ProcID(id), Commit: true})
			}
		}
	}
	return out
}

// Minimize shrinks a violating schedule to a 1-minimal reproduction using
// the fast engine (the counterpart of check.Minimize, hundreds of times
// faster because candidate evaluation is a pure state replay).
func (e *Engine) Minimize(sched []tso.Decision) ([]tso.Decision, error) {
	reproduces := func(cand []tso.Decision) bool {
		st := e.Initial()
		for _, d := range cand {
			if err := e.Apply(st, d); err != nil {
				return false
			}
			if e.Violated(st) {
				return true
			}
		}
		return e.Violated(st)
	}
	cur := append([]tso.Decision(nil), sched...)
	if !reproduces(cur) {
		return nil, errors.New("vmprog: schedule does not reproduce a violation")
	}
	// Trim the suffix after the violation.
	lo, hi := 0, len(cur)
	for lo < hi {
		mid := (lo + hi) / 2
		if reproduces(cur[:mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	cur = cur[:lo]
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(cur); i++ {
			cand := make([]tso.Decision, 0, len(cur)-1)
			cand = append(cand, cur[:i]...)
			cand = append(cand, cur[i+1:]...)
			if reproduces(cand) {
				cur = cand
				changed = true
				i--
			}
		}
	}
	return cur, nil
}
