package vmprog

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"

	"priceadaptive/internal/tso"
)

// bufEnt is one buffered write in the fast engine.
type bufEnt struct {
	v int
	x uint64
}

// PState is the complete state of one process: flat, comparable-by-content,
// and cheap to clone. A started, unfinished process is always parked at an
// event instruction (its local register/jump instructions have already been
// applied), mirroring how the goroutine engine parks programs at their next
// posted operation.
type PState struct {
	PC      int
	Regs    [NumRegs]uint64
	Buf     []bufEnt
	Fencing bool
	Started bool
	Done    bool
	InExit  bool // CS executed, Exit pending at OpHalt
	// Crashed marks a crash-stopped process awaiting its Recover
	// transition: buffer and registers discarded, PC parked at the
	// program's recover entry. The next Step executes the recovery.
	Crashed bool
	// CrashCount is how many times this process has crashed, bounding
	// per-process crash budgets during crash-enabled exploration.
	CrashCount int
}

// BufLen returns the number of buffered, uncommitted writes.
func (p *PState) BufLen() int { return len(p.Buf) }

// BufVar returns the variable index of the i-th buffered write (0 is the
// oldest, the only write TSO may commit next).
func (p *PState) BufVar(i int) int { return p.Buf[i].v }

// BufVal returns the pending value of the i-th buffered write.
func (p *PState) BufVal(i int) uint64 { return p.Buf[i].x }

// State is a full machine state of the fast engine.
type State struct {
	Mem   []uint64
	Procs []PState
	// Crashes is the total number of crash transitions taken to reach
	// this state (the sum of the per-process CrashCounts), bounding the
	// total crash budget during crash-enabled exploration.
	Crashes int
}

// Clone returns a deep copy.
func (s *State) Clone() *State {
	ns := &State{
		Mem:     append([]uint64(nil), s.Mem...),
		Procs:   make([]PState, len(s.Procs)),
		Crashes: s.Crashes,
	}
	copy(ns.Procs, s.Procs)
	for i := range ns.Procs {
		ns.Procs[i].Buf = append([]bufEnt(nil), s.Procs[i].Buf...)
	}
	return ns
}

// FactsVersion is the current PruneFacts schema version. The engine rejects
// facts carrying any other version with ErrStaleFacts: facts are cached
// (jobs artifact store, padlint) and a stale cached schema silently
// reinterpreted would be an unsoundness, not a degradation.
const FactsVersion = 2

// ErrStaleFacts reports pruning facts produced under a different
// PruneFacts schema version than the engine implements.
var ErrStaleFacts = errors.New("vmprog: pruning facts version mismatch")

// SymForm is an affine value map under a process permutation pi: a value x
// with (x-A)/B in [0,n) denotes "process (x-A)/B" and maps to
// A + B*pi((x-A)/B); every other value is a fixed point. B is +1 or -1 for
// a real form; B == 0 is the identity sentinel (the value carries no
// process identity). The same shape describes register values, variable
// contents, and array-cell indices.
type SymForm struct {
	A int64 `json:"a"`
	B int64 `json:"b"`
}

// Mapped reports whether the form denotes a real (non-identity) map.
func (f SymForm) Mapped() bool { return f.B != 0 }

// apply maps x under the permutation perm (perm[i] = image of process i).
func (f SymForm) apply(x uint64, perm []int) uint64 {
	if f.B == 0 {
		return x
	}
	m := (int64(x) - f.A) * f.B // B is +-1, so *B == /B
	if m < 0 || m >= int64(len(perm)) {
		return x
	}
	return uint64(f.A + f.B*int64(perm[m]))
}

// SymmetryFacts certify that the program is invariant under every
// permutation of process ids, together with the data needed to apply a
// permutation to a state: per-(pc,register), per-variable-value and
// per-variable-cell affine forms. They are only produced by the static
// scalarset discipline in internal/analysis/por, which fails closed: any
// instruction it cannot type as permutation-invariant voids the facts.
type SymmetryFacts struct {
	// RegForms[pc][r] transforms register r of a process parked at pc.
	RegForms [][]SymForm `json:"reg_forms"`
	// ValForms[v] transforms the value held by variable v (and by buffered
	// writes to v). Uniform across an array extent.
	ValForms []SymForm `json:"val_forms"`
	// CellForms[v] maps the *index* v to the cell that receives v's
	// content under the permutation (identity for scalars and
	// data-indexed arrays).
	CellForms []SymForm `json:"cell_forms"`
}

// PruneFacts are static facts about a program, computed by the analyzer in
// internal/analysis/por, that let the model checker merge equivalent
// interleavings. Every field is a *guarantee*: a wrong fact would make the
// exploration unsound, so facts are only produced by dataflow analyses
// whose soundness the differential tests in internal/check verify. Facts
// are instantiated for a concrete process count N (future footprints are
// per-process, symmetry is over S_N) and are JSON-serializable so they can
// be cached per program hash x n in the jobs artifact store.
type PruneFacts struct {
	// Version is the schema version (FactsVersion); UsePruning rejects
	// anything else with ErrStaleFacts.
	Version int `json:"version"`
	// N is the process count the facts were instantiated for.
	N int `json:"n"`
	// EmptyBufAt[pc] reports that the write buffer is provably empty
	// whenever a process is parked at pc: no path from the program's entry
	// to pc carries a write that is not followed by a fence or CAS.
	EmptyBufAt []bool `json:"empty_buf_at"`
	// VisibleAt[pc] reports that stepping a process parked at pc may
	// change the Violated predicate: the instruction is the CS itself, or
	// its continuation can park at the CS. Invisible steps are ample-set
	// candidates (condition C2).
	VisibleAt []bool `json:"visible_at"`
	// VisibleStart reports that starting a process can park it at the CS.
	VisibleStart bool `json:"visible_start"`
	// FutureReads[id*len(code)+pc] is a bitset (64 vars per word) of every
	// variable process id may still read at or after pc; FutureWrites the
	// same for writes (a CAS contributes to both). Indexed accesses whose
	// index register is statically affine in the process id are
	// instantiated exactly; anything else widens to the whole array
	// extent. Used for the static independence relation (condition C1).
	FutureReads  [][]uint64 `json:"future_reads"`
	FutureWrites [][]uint64 `json:"future_writes"`
	// LiveRegs[pc] is a bitmask of the registers live-in at pc (bit r set:
	// some path from pc uses register r before redefining it). Dead
	// registers are zeroed during canonicalization: states differing only
	// in junk a process will never read again are bisimilar.
	LiveRegs []uint16 `json:"live_regs"`
	// Symmetry is non-nil when the program is statically proven
	// permutation-invariant. It must only be applied together with
	// LiveRegs (dead registers may hold untransformable junk).
	Symmetry *SymmetryFacts `json:"symmetry,omitempty"`
}

// Engine executes a VM program under the TSO (or PSO) operational semantics
// with explicit, clonable state.
type Engine struct {
	prog  *Program
	n     int
	ord   tso.Ordering
	facts *PruneFacts
	red   *reducer
}

// NewEngineOrdering builds an engine for n processes under the given memory
// ordering (tso.TSO or tso.PSO; the zero Ordering defaults to TSO). This is
// the canonical constructor; NewEngine is a deprecated shim over it.
func NewEngineOrdering(p *Program, n int, ord tso.Ordering) (*Engine, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("vmprog: n must be positive, got %d", n)
	}
	switch ord {
	case 0:
		ord = tso.TSO
	case tso.TSO, tso.PSO:
	default:
		return nil, fmt.Errorf("vmprog: unknown memory ordering %d", int(ord))
	}
	return &Engine{prog: p, n: n, ord: ord}, nil
}

// NewEngine builds an engine for n processes. pso selects partial store
// ordering (out-of-order commits allowed).
//
// Deprecated: use NewEngineOrdering with tso.TSO or tso.PSO; the naked bool
// is unreadable at call sites and closed to further memory models.
func NewEngine(p *Program, n int, pso bool) (*Engine, error) {
	ord := tso.TSO
	if pso {
		ord = tso.PSO
	}
	return NewEngineOrdering(p, n, ord)
}

// Ordering returns the engine's memory-ordering model.
func (e *Engine) Ordering() tso.Ordering { return e.ord }

// UsePruning installs static pruning facts (see PruneFacts). Passing nil
// disables pruning. The facts must describe this engine's program at this
// engine's process count, and must carry the current schema version:
// version mismatches return ErrStaleFacts (wrapped) instead of being
// silently ignored, because stale cached facts reinterpreted under a new
// schema would corrupt the exploration rather than merely slow it down.
func (e *Engine) UsePruning(f *PruneFacts) error {
	if f == nil {
		e.facts = nil
		e.red = nil
		return nil
	}
	if f.Version != FactsVersion {
		return fmt.Errorf("%w: facts version %d, engine implements %d",
			ErrStaleFacts, f.Version, FactsVersion)
	}
	if f.N != e.n {
		return fmt.Errorf("vmprog: pruning facts instantiated for n=%d, engine has n=%d", f.N, e.n)
	}
	nc := len(e.prog.Code)
	if len(f.EmptyBufAt) != nc || len(f.VisibleAt) != nc || len(f.LiveRegs) != nc {
		return fmt.Errorf("vmprog: pruning facts cover %d/%d/%d instructions, program has %d",
			len(f.EmptyBufAt), len(f.VisibleAt), len(f.LiveRegs), nc)
	}
	if len(f.FutureReads) != e.n*nc || len(f.FutureWrites) != e.n*nc {
		return fmt.Errorf("vmprog: footprint tables cover %d/%d points, want %d",
			len(f.FutureReads), len(f.FutureWrites), e.n*nc)
	}
	if s := f.Symmetry; s != nil {
		if len(s.RegForms) != nc || len(s.ValForms) != len(e.prog.Vars) || len(s.CellForms) != len(e.prog.Vars) {
			return fmt.Errorf("vmprog: symmetry facts shaped %d/%d/%d, want %d/%d/%d",
				len(s.RegForms), len(s.ValForms), len(s.CellForms), nc, len(e.prog.Vars), len(e.prog.Vars))
		}
		for pc := range s.RegForms {
			if len(s.RegForms[pc]) != NumRegs {
				return fmt.Errorf("vmprog: symmetry reg forms at pc %d cover %d registers, want %d",
					pc, len(s.RegForms[pc]), NumRegs)
			}
		}
	}
	e.facts = f
	e.red = newReducer(e, f)
	return nil
}

// Program returns the program the engine executes.
func (e *Engine) Program() *Program { return e.prog }

// NumProcs returns the engine's process count.
func (e *Engine) NumProcs() int { return e.n }

// Initial returns the initial state: memory zeroed, no process started.
func (e *Engine) Initial() *State {
	return &State{
		Mem:   make([]uint64, len(e.prog.Vars)),
		Procs: make([]PState, e.n),
	}
}

// errInvalidDecision reports a decision that is not enabled in the state.
var errInvalidDecision = errors.New("vmprog: decision not enabled")

// advance executes register and control-flow instructions until the process
// parks at an event instruction or OpHalt. Local instructions are free in
// the memory model, exactly as Go code between two Proc calls runs inside
// the program goroutine on the goroutine engine.
func (e *Engine) advance(p *PState, id int) error {
	for {
		in := e.prog.Code[p.PC]
		switch in.Op {
		case OpConst:
			p.Regs[in.A] = in.Imm
		case OpMe:
			p.Regs[in.A] = uint64(id)
		case OpProcs:
			p.Regs[in.A] = uint64(e.n)
		case OpAdd:
			p.Regs[in.A] = p.Regs[in.B] + p.Regs[in.C]
		case OpSub:
			p.Regs[in.A] = p.Regs[in.B] - p.Regs[in.C]
		case OpJump:
			p.PC = in.Target
			continue
		case OpJumpIfEq:
			if p.Regs[in.A] == p.Regs[in.B] {
				p.PC = in.Target
				continue
			}
		case OpJumpIfNe:
			if p.Regs[in.A] != p.Regs[in.B] {
				p.PC = in.Target
				continue
			}
		case OpJumpIfLt:
			if p.Regs[in.A] < p.Regs[in.B] {
				p.PC = in.Target
				continue
			}
		default:
			// Event instruction or Halt: park here.
			return nil
		}
		p.PC++
	}
}

// bufLookup returns the pending buffered write to variable vi, if any.
func bufLookup(p *PState, vi int) (uint64, bool) {
	for i := range p.Buf {
		if p.Buf[i].v == vi {
			return p.Buf[i].x, true
		}
	}
	return 0, false
}

// bufPush coalesces a write into the buffer (TSO: one entry per variable).
func bufPush(p *PState, vi int, x uint64) {
	for i := range p.Buf {
		if p.Buf[i].v == vi {
			p.Buf[i].x = x
			return
		}
	}
	p.Buf = append(p.Buf, bufEnt{v: vi, x: x})
}

// commitAt makes the i-th buffered write visible.
func commitAt(s *State, p *PState, i int) {
	w := p.Buf[i]
	s.Mem[w.v] = w.x
	p.Buf = append(p.Buf[:i], p.Buf[i+1:]...)
}

// Step lets process id execute its next event, mirroring
// tso.Simulator.Step: Enter for an unstarted process, a commit while
// fencing (or draining for a CAS) with a non-empty buffer, otherwise the
// parked event instruction.
func (e *Engine) Step(s *State, id int) error {
	if id < 0 || id >= e.n {
		return errInvalidDecision
	}
	p := &s.Procs[id]
	if p.Done {
		return errInvalidDecision
	}
	if !p.Started {
		p.Started = true
		return e.advance(p, id)
	}
	if p.Crashed {
		// The Recover transition: the crash already discarded the volatile
		// state and parked the PC at the recover entry; recovery resumes
		// execution there, mirroring tso.Simulator's applyRecover.
		p.Crashed = false
		return e.advance(p, id)
	}
	if p.Fencing {
		if len(p.Buf) > 0 {
			commitAt(s, p, 0)
			return nil
		}
		// EndFence.
		p.Fencing = false
		p.PC++
		return e.advance(p, id)
	}
	in := e.prog.Code[p.PC]
	switch in.Op {
	case OpRead:
		vi, err := e.prog.varIndex(in, &p.Regs)
		if err != nil {
			return err
		}
		if x, ok := bufLookup(p, vi); ok {
			p.Regs[in.A] = x
		} else {
			p.Regs[in.A] = s.Mem[vi]
		}
		p.PC++
		return e.advance(p, id)
	case OpWrite:
		vi, err := e.prog.varIndex(in, &p.Regs)
		if err != nil {
			return err
		}
		bufPush(p, vi, p.Regs[in.A])
		p.PC++
		return e.advance(p, id)
	case OpFence:
		p.Fencing = true
		return nil
	case OpCAS:
		if len(p.Buf) > 0 {
			// Serializing: drain the buffer first, one commit per step.
			commitAt(s, p, 0)
			return nil
		}
		vi, err := e.prog.varIndex(in, &p.Regs)
		if err != nil {
			return err
		}
		observed := s.Mem[vi]
		if observed == p.Regs[in.B] {
			s.Mem[vi] = p.Regs[in.C]
		}
		p.Regs[in.A] = observed
		p.PC++
		return e.advance(p, id)
	case OpCS:
		p.InExit = true
		p.PC++
		return e.advance(p, id)
	case OpHalt:
		p.Done = true
		return nil
	default:
		return fmt.Errorf("vmprog: parked at non-event instruction %d", int(in.Op))
	}
}

// Commit makes a buffered write of process id visible. varIdx selects the
// variable (PSO); pass -1 for the oldest write (the only legal choice under
// TSO). Like tso.Simulator.Commit it is also legal while the process is
// executing a fence (the adversary committing on the process's behalf).
func (e *Engine) Commit(s *State, id int, varIdx int) error {
	p := &s.Procs[id]
	if len(p.Buf) == 0 {
		return errInvalidDecision
	}
	if varIdx < 0 || p.Buf[0].v == varIdx {
		commitAt(s, p, 0)
		return nil
	}
	if e.ord != tso.PSO {
		return fmt.Errorf("vmprog: out-of-order commit requires PSO")
	}
	for i := range p.Buf {
		if p.Buf[i].v == varIdx {
			commitAt(s, p, i)
			return nil
		}
	}
	return errInvalidDecision
}

// PendingCS reports whether process id's next event is the CS transition.
// A crashed process has no pending CS: its next transition is the Recover,
// and per the RME setting a crash-stopped process is not in its critical
// section.
func (e *Engine) PendingCS(s *State, id int) bool {
	p := &s.Procs[id]
	if !p.Started || p.Done || p.Fencing || p.Crashed {
		return false
	}
	return e.prog.Code[p.PC].Op == OpCS
}

// Violated reports whether two CS events are simultaneously enabled (the
// paper's exclusion failure).
func (e *Engine) Violated(s *State) bool {
	count := 0
	for id := range s.Procs {
		if e.PendingCS(s, id) {
			count++
		}
	}
	return count >= 2
}

// AllDone reports whether every process completed its passage.
func (e *Engine) AllDone(s *State) bool {
	for i := range s.Procs {
		if !s.Procs[i].Done {
			return false
		}
	}
	return true
}

// Apply executes a tso.Decision on the state, for replaying schedules
// recorded against the goroutine engine.
func (e *Engine) Apply(s *State, d tso.Decision) error {
	if d.Crash {
		return e.Crash(s, int(d.P))
	}
	if d.Commit {
		varIdx := -1
		if d.VarPlus1 > 0 {
			varIdx = d.VarPlus1 - 1
		}
		return e.Commit(s, int(d.P), varIdx)
	}
	return e.Step(s, int(d.P))
}

// Hash fingerprints a state, for callers (like the crash-schedule search)
// that deduplicate their own frontiers. Equal states hash equal; collisions
// are possible, so it must not substitute for equality where soundness
// depends on it.
func (e *Engine) Hash(s *State) uint64 { return e.hash(s) }

// hash fingerprints a state.
func (e *Engine) hash(s *State) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w := func(x uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(x >> (8 * i))
		}
		h.Write(buf[:])
	}
	for _, m := range s.Mem {
		w(m)
	}
	for i := range s.Procs {
		p := &s.Procs[i]
		w(pflags(p))
		for _, r := range p.Regs {
			w(r)
		}
		w(uint64(len(p.Buf)))
		for _, b := range p.Buf {
			w(uint64(b.v))
			w(b.x)
		}
	}
	return h.Sum64()
}

// pflags packs a process's scheduling-relevant booleans, PC and crash
// budget into one word, shared by the state hash and the canonicalizer's
// flat encoding so the two never disagree on state identity. CrashCount is
// part of state identity: the remaining per-process crash budget
// determines which crash transitions are enabled.
func pflags(p *PState) uint64 {
	flags := uint64(p.CrashCount)<<32 | uint64(p.PC)<<5
	if p.Fencing {
		flags |= 1
	}
	if p.Started {
		flags |= 2
	}
	if p.Done {
		flags |= 4
	}
	if p.InExit {
		flags |= 8
	}
	if p.Crashed {
		flags |= 16
	}
	return flags
}

// CheckResult summarizes an exhaustive exploration by the fast engine.
type CheckResult struct {
	// States is the number of distinct states visited.
	States int
	// Transitions is the number of decisions applied.
	Transitions int
	// Complete reports whether the full reachable state space was
	// explored.
	Complete bool
	// Violation reports whether an exclusion violation was found.
	Violation bool
	// Schedule reproduces the violation (also applicable to the goroutine
	// engine via the same decisions).
	Schedule []tso.Decision
	// AmpleSteps counts states where the reduction restricted expansion to
	// a single process's transitions (0 without UsePruning).
	AmpleSteps int
	// Probabilistic reports that the exploration used bitstate hashing
	// (ParallelOpts.BitstateBits): distinct states may have been merged by
	// hash collision, so Complete && !Violation is strong evidence of
	// correctness, not proof. A Violation and its Schedule remain exact.
	// Callers must never report a probabilistic pass as an exact verdict.
	Probabilistic bool
	// crossShard counts successors routed to a different seen-set shard
	// than their parent's (0 for the sequential engine); the shard-routing
	// tests use it to force and observe cross-shard handoff.
	crossShard int
}

// Check explores the reachable state space exhaustively (bounded by
// maxStates) and reports the first exclusion violation. Unlike the
// replay-based checker in package check, states are true snapshots: spin
// loops revisit identical states and the exploration terminates without any
// spin-collapsing heuristic. Cancelling ctx aborts the exploration with the
// context's error.
//
// With pruning facts installed (UsePruning) the exploration is reduced but
// verdict-equivalent: at each state an ample process - one whose every
// enabled transition is invisible and statically independent of every
// other process's future - is expanded alone (conditions C0-C2), unless
// one of its successors was already visited, in which case the state is
// fully expanded (the visited-proviso discharging condition C3: every
// cycle of the reduced graph contains a fully expanded state). When the
// facts additionally carry liveness masks and symmetry forms, successor
// states are canonicalized - dead registers zeroed, then the
// lexicographically minimal representative under all process permutations
// - and exploration continues from the canonical state; recorded schedule
// decisions are translated back through the accumulated permutation so
// Schedule always replays against an unreduced engine from the true
// initial state.
func (e *Engine) Check(ctx context.Context, maxStates int) (*CheckResult, error) {
	if maxStates <= 0 {
		maxStates = 1 << 20
	}
	res := &CheckResult{Complete: true}
	r := e.red
	seen := make(map[uint64]bool)
	type node struct {
		st   *State
		path []tso.Decision // decisions in the real (initial) frame
		cum  []int          // real slot -> current slot; nil = identity
	}
	// canon maps a freshly produced state to its canonical representative
	// plus the permutation applied (nil perm = identity).
	canon := func(s *State) (*State, []int) {
		if r == nil {
			return s, nil
		}
		return r.canonicalize(s)
	}
	root, rootPerm := canon(e.Initial())
	seen[e.hash(root)] = true
	res.States = 1
	stack := []node{{st: root, cum: rootPerm}}
	// push applies d (in nd's frame) to nd.st, canonicalizes, and pushes
	// the child if unseen. Every applied decision counts as a transition.
	push := func(nd *node, d tso.Decision, child *State, perm []int) {
		h := e.hash(child)
		if seen[h] {
			return
		}
		seen[h] = true
		res.States++
		path := make([]tso.Decision, len(nd.path)+1)
		copy(path, nd.path)
		path[len(nd.path)] = realDecision(r, d, nd.cum)
		stack = append(stack, node{st: child, path: path, cum: compose(perm, nd.cum, e.n)})
	}
	for len(stack) > 0 {
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if res.States&0xfff == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if e.Violated(nd.st) {
			res.Violation = true
			res.Schedule = nd.path
			res.Complete = false
			return res, nil
		}
		if res.States > maxStates {
			res.Complete = false
			return res, nil
		}
		if r != nil {
			if id, ok := e.ampleProcess(nd.st); ok {
				amp := e.procDecisions(nd.st, id, nil)
				kids := make([]*State, len(amp))
				perms := make([][]int, len(amp))
				proviso := false
				for i, d := range amp {
					child := nd.st.Clone()
					if err := e.Apply(child, d); err != nil {
						return nil, fmt.Errorf("vmprog: check: %w", err)
					}
					kids[i], perms[i] = canon(child)
					if seen[e.hash(kids[i])] {
						// C3 visited-proviso: an ample successor was
						// already visited, so this state could close a
						// cycle along which other processes are ignored
						// forever; expand it fully instead.
						proviso = true
					}
				}
				if !proviso {
					res.AmpleSteps++
					res.Transitions += len(amp)
					for i, d := range amp {
						push(&nd, d, kids[i], perms[i])
					}
					continue
				}
			}
		}
		for _, d := range e.decisions(nd.st) {
			child := nd.st.Clone()
			if err := e.Apply(child, d); err != nil {
				return nil, fmt.Errorf("vmprog: check: %w", err)
			}
			res.Transitions++
			cc, perm := canon(child)
			push(&nd, d, cc, perm)
		}
	}
	return res, nil
}

// decisions enumerates the enabled scheduling decisions in a state.
func (e *Engine) decisions(s *State) []tso.Decision {
	var out []tso.Decision
	for id := range s.Procs {
		out = e.procDecisions(s, id, out)
	}
	return out
}

// procDecisions appends process id's enabled decisions to out.
func (e *Engine) procDecisions(s *State, id int, out []tso.Decision) []tso.Decision {
	p := &s.Procs[id]
	if !p.Done {
		out = append(out, tso.Decision{P: tso.ProcID(id)})
	}
	if len(p.Buf) > 0 && !p.Fencing {
		if e.ord == tso.PSO {
			for _, b := range p.Buf {
				out = append(out, tso.Decision{P: tso.ProcID(id), Commit: true, VarPlus1: b.v + 1})
			}
		} else {
			out = append(out, tso.Decision{P: tso.ProcID(id), Commit: true})
		}
	}
	return out
}

// Minimize shrinks a violating schedule to a 1-minimal reproduction using
// the fast engine (the counterpart of check.Minimize, hundreds of times
// faster because candidate evaluation is a pure state replay).
func (e *Engine) Minimize(sched []tso.Decision) ([]tso.Decision, error) {
	reproduces := func(cand []tso.Decision) bool {
		st := e.Initial()
		for _, d := range cand {
			if err := e.Apply(st, d); err != nil {
				return false
			}
			if e.Violated(st) {
				return true
			}
		}
		return e.Violated(st)
	}
	cur := append([]tso.Decision(nil), sched...)
	if !reproduces(cur) {
		return nil, errors.New("vmprog: schedule does not reproduce a violation")
	}
	// Trim the suffix after the violation.
	lo, hi := 0, len(cur)
	for lo < hi {
		mid := (lo + hi) / 2
		if reproduces(cur[:mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	cur = cur[:lo]
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(cur); i++ {
			cand := make([]tso.Decision, 0, len(cur)-1)
			cand = append(cand, cur[:i]...)
			cand = append(cand, cur[i+1:]...)
			if reproduces(cand) {
				cur = cand
				changed = true
				i--
			}
		}
	}
	return cur, nil
}
