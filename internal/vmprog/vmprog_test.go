package vmprog

import (
	"context"
	"errors"
	"testing"

	"priceadaptive/internal/tso"
)

func TestBuilderValidation(t *testing.T) {
	b := NewBuilder("bad")
	b.Jump("nowhere")
	b.Halt()
	if _, err := b.Build(); err == nil {
		t.Error("undefined label must be rejected")
	}

	b = NewBuilder("nocs")
	b.Halt()
	if _, err := b.Build(); err == nil {
		t.Error("program without CS must be rejected")
	}

	b = NewBuilder("nohalt")
	b.CS()
	if _, err := b.Build(); err == nil {
		t.Error("program without Halt must be rejected")
	}
}

func TestLockProgramsBuild(t *testing.T) {
	for _, tc := range []struct {
		name string
		p    *Program
		err  error
	}{} {
		_ = tc
	}
	if p, err := Peterson(true); err != nil || len(p.Code) == 0 {
		t.Errorf("Peterson: %v", err)
	}
	if p, err := TAS(); err != nil || len(p.Vars) != 1 {
		t.Errorf("TAS: %v", err)
	}
	if p, err := Bakery(3, false); err != nil || len(p.Vars) != 6 {
		t.Errorf("Bakery: %v", err)
	}
}

// runAdapted runs a VM program on the goroutine engine under a scheduler.
func runAdapted(t *testing.T, p *Program, cfg tso.Config, sched tso.Scheduler) *tso.Simulator {
	t.Helper()
	sim, err := tso.NewSimulator(cfg, Adapt(p))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sim.Kill)
	res, err := tso.Run(sim, sched, 5_000_000)
	if err != nil {
		for i := 0; i < cfg.N; i++ {
			if msg, ok := sim.ProgramPanic(tso.ProcID(i)); ok {
				t.Fatalf("p%d panicked: %s", i, msg)
			}
		}
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("did not complete")
	}
	return sim
}

func TestVMPetersonOnGoroutineEngine(t *testing.T) {
	p := MustPeterson(true)
	for seed := int64(1); seed <= 10; seed++ {
		sim := runAdapted(t, p, tso.Config{N: 2}, tso.NewRandom(seed, 0.3))
		if v := sim.ExclusionViolation(); v != nil {
			t.Fatalf("seed %d: %v", seed, v)
		}
	}
}

func TestVMBakeryOnGoroutineEngine(t *testing.T) {
	p := MustBakery(3, false)
	for seed := int64(1); seed <= 6; seed++ {
		sim := runAdapted(t, p, tso.Config{N: 3}, tso.NewRandom(seed, 0.3))
		if v := sim.ExclusionViolation(); v != nil {
			t.Fatalf("seed %d: %v", seed, v)
		}
	}
}

func TestVMTASOnGoroutineEngine(t *testing.T) {
	p := MustTAS()
	sim := runAdapted(t, p, tso.Config{N: 4, Passages: 2}, tso.NewRoundRobin())
	if v := sim.ExclusionViolation(); v != nil {
		t.Fatal(v)
	}
}

// TestDifferentialEnginesAgree drives identical schedules through the
// goroutine engine and the fast engine and requires identical observable
// behaviour: final memory, per-process completion, buffer sizes, and the
// violation verdict.
func TestDifferentialEnginesAgree(t *testing.T) {
	programs := []*Program{
		MustPeterson(true),
		MustPeterson(false),
		MustTAS(),
		MustBakery(2, false),
		MustBakery(2, true),
	}
	for _, p := range programs {
		n := 2
		for seed := int64(1); seed <= 8; seed++ {
			// Record a schedule on the goroutine engine.
			sim, err := tso.NewSimulator(tso.Config{N: n}, Adapt(p))
			if err != nil {
				t.Fatal(err)
			}
			_, err = tso.Run(sim, tso.NewRandom(seed, 0.3), 200000)
			if err != nil && !errors.Is(err, tso.ErrStepBudget) {
				sim.Kill()
				t.Fatalf("%s seed %d: %v", p.Name, seed, err)
			}
			// A budget-exhausted run (e.g. a spin livelock of the broken
			// variant) still yields a schedule prefix to compare on.
			sched := append([]tso.Decision(nil), sim.Execution().Schedule...)

			// Replay on the fast engine.
			eng, err := NewEngineOrdering(p, n, tso.TSO)
			if err != nil {
				sim.Kill()
				t.Fatal(err)
			}
			st := eng.Initial()
			violatedFast := false
			for i, d := range sched {
				if err := eng.Apply(st, d); err != nil {
					sim.Kill()
					t.Fatalf("%s seed %d: fast engine rejected decision %d (%v): %v", p.Name, seed, i, d, err)
				}
				if eng.Violated(st) {
					violatedFast = true
				}
			}
			// Compare memory.
			for vi, name := range p.Vars {
				want := sim.Value(sim.Memory().Vars()[vi])
				if got := st.Mem[vi]; got != want {
					sim.Kill()
					t.Fatalf("%s seed %d: memory diverged at %s: fast=%d goroutine=%d", p.Name, seed, name, got, want)
				}
			}
			// Compare per-process progress.
			for id := 0; id < n; id++ {
				if st.Procs[id].Done != sim.Done(tso.ProcID(id)) {
					sim.Kill()
					t.Fatalf("%s seed %d: done status diverged for p%d", p.Name, seed, id)
				}
				if len(st.Procs[id].Buf) != sim.BufferSize(tso.ProcID(id)) {
					sim.Kill()
					t.Fatalf("%s seed %d: buffer size diverged for p%d: fast=%d goroutine=%d",
						p.Name, seed, id, len(st.Procs[id].Buf), sim.BufferSize(tso.ProcID(id)))
				}
			}
			violatedSlow := sim.ExclusionViolation() != nil
			if violatedFast != violatedSlow {
				sim.Kill()
				t.Fatalf("%s seed %d: violation verdicts diverged: fast=%v goroutine=%v",
					p.Name, seed, violatedFast, violatedSlow)
			}
			sim.Kill()
		}
	}
}

func TestFastCheckVerifiesPetersonCompletely(t *testing.T) {
	p := MustPeterson(true)
	eng, err := NewEngineOrdering(p, 2, tso.TSO)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Check(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation {
		t.Fatalf("fenced Peterson violated: schedule %v", res.Schedule)
	}
	if !res.Complete {
		t.Fatalf("state space not exhausted: %d states", res.States)
	}
	t.Logf("complete: %d states, %d transitions", res.States, res.Transitions)
}

func TestFastCheckFindsPetersonNoFenceViolation(t *testing.T) {
	p := MustPeterson(false)
	eng, err := NewEngineOrdering(p, 2, tso.TSO)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Check(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Violation {
		t.Fatalf("fence-free Peterson must violate (states=%d complete=%v)", res.States, res.Complete)
	}
	// The violating schedule must replay on the GOROUTINE engine too: the
	// decisive cross-engine check.
	sim, err := tso.NewSimulator(tso.Config{N: 2}, Adapt(p))
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Kill()
	for _, d := range res.Schedule {
		var err error
		if d.Commit {
			_, err = sim.Commit(d.P)
		} else {
			_, err = sim.Step(d.P)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if sim.ExclusionViolation() == nil {
		t.Fatal("fast-engine schedule did not reproduce on the goroutine engine")
	}
}

// TestFastCheckBakeryTSOSafePSOUnsafe is the machine-checked TSO/PSO
// separation (experiment E9): the standard bakery (fenced doorway) is safe
// under every TSO schedule - the state space is finite and fully explored -
// but under PSO the doorway's number/choosing writes can become visible out
// of issue order BEFORE the fence drains them, and exclusion breaks.
func TestFastCheckBakeryTSOSafePSOUnsafe(t *testing.T) {
	p := MustBakery(2, false)
	eng, err := NewEngineOrdering(p, 2, tso.TSO)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Check(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation {
		t.Fatalf("bakery violated under TSO: %v", res.Schedule)
	}
	if !res.Complete {
		t.Fatalf("TSO state space not exhausted: %d states", res.States)
	}
	t.Logf("TSO: complete verification, %d states", res.States)

	engP, err := NewEngineOrdering(p, 2, tso.PSO)
	if err != nil {
		t.Fatal(err)
	}
	resP, err := engP.Check(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !resP.Violation {
		t.Fatalf("bakery must violate under PSO (states=%d complete=%v)", resP.States, resP.Complete)
	}
	hasOutOfOrder := false
	for _, d := range resP.Schedule {
		if d.Commit && d.VarPlus1 > 0 {
			hasOutOfOrder = true
		}
	}
	if !hasOutOfOrder {
		t.Errorf("PSO violation schedule has no out-of-order commit: %v", resP.Schedule)
	}
	t.Logf("PSO: violation after %d states, schedule %d decisions", resP.States, len(resP.Schedule))
}

// TestFastCheckWeakBakeryUnsafeEvenUnderTSO records a finding the fast
// engine produced: the bakery WITHOUT its ticket-publication fence is broken
// even under TSO. The informal argument "TSO commits the ticket before the
// choosing flag, so the doorway is still ordered" is wrong - the problem is
// not ordering but DELAY: a process can pass its whole wait loop while its
// ticket is still buffered and invisible, let a competitor draw an equal
// ticket, and lose the tie-break symmetrically. The bounded replay-based
// checker had missed this within budget; the fast engine's complete search
// found it, and the schedule replays on the goroutine engine.
func TestFastCheckWeakBakeryUnsafeEvenUnderTSO(t *testing.T) {
	p := MustBakery(2, true)
	eng, err := NewEngineOrdering(p, 2, tso.TSO)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Check(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Violation {
		t.Fatalf("weak-doorway bakery must violate even under TSO (states=%d)", res.States)
	}
	// Cross-engine confirmation.
	sim, err := tso.NewSimulator(tso.Config{N: 2}, Adapt(p))
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Kill()
	for i, d := range res.Schedule {
		var err error
		if d.Commit {
			_, err = sim.Commit(d.P)
		} else {
			_, err = sim.Step(d.P)
		}
		if err != nil {
			t.Fatalf("decision %d: %v", i, err)
		}
	}
	if sim.ExclusionViolation() == nil {
		t.Fatal("TSO violation did not reproduce on the goroutine engine")
	}
	t.Logf("confirmed on both engines: %d-decision schedule", len(res.Schedule))
}

func TestEngineValidation(t *testing.T) {
	p := MustTAS()
	if _, err := NewEngineOrdering(p, 0, tso.TSO); err == nil {
		t.Error("n=0 must be rejected")
	}
	eng, err := NewEngineOrdering(p, 2, tso.TSO)
	if err != nil {
		t.Fatal(err)
	}
	st := eng.Initial()
	if err := eng.Step(st, 5); err == nil {
		t.Error("out-of-range process must be rejected")
	}
	if err := eng.Commit(st, 0, -1); err == nil {
		t.Error("commit with empty buffer must be rejected")
	}
}

func TestStateCloneIndependence(t *testing.T) {
	p := MustPeterson(false)
	eng, err := NewEngineOrdering(p, 2, tso.TSO)
	if err != nil {
		t.Fatal(err)
	}
	st := eng.Initial()
	if err := eng.Step(st, 0); err != nil { // Enter + park
		t.Fatal(err)
	}
	cl := st.Clone()
	if err := eng.Step(cl, 0); err != nil { // issue flag write into clone
		t.Fatal(err)
	}
	if len(st.Procs[0].Buf) != 0 {
		t.Error("clone mutation leaked into original buffer")
	}
	if len(cl.Procs[0].Buf) == 0 {
		t.Error("clone did not advance")
	}
}

func TestFastCheckDekker(t *testing.T) {
	// Fenced Dekker: complete TSO verification. Note turn is initially 0,
	// meaning p0 has priority in the contended backoff path.
	eng, err := NewEngineOrdering(MustDekker(true), 2, tso.TSO)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Check(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation {
		t.Fatalf("fenced Dekker violated: %v", res.Schedule)
	}
	if !res.Complete {
		t.Fatalf("incomplete: %d states", res.States)
	}
	t.Logf("fenced Dekker: complete, %d states", res.States)

	// Fence-free Dekker: TSO violation.
	engNF, err := NewEngineOrdering(MustDekker(false), 2, tso.TSO)
	if err != nil {
		t.Fatal(err)
	}
	resNF, err := engNF.Check(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !resNF.Violation {
		t.Fatalf("fence-free Dekker must violate under TSO (states=%d)", resNF.States)
	}
}

func TestVMDekkerOnGoroutineEngine(t *testing.T) {
	p := MustDekker(true)
	for seed := int64(1); seed <= 8; seed++ {
		sim := runAdapted(t, p, tso.Config{N: 2}, tso.NewRandom(seed, 0.3))
		if v := sim.ExclusionViolation(); v != nil {
			t.Fatalf("seed %d: %v", seed, v)
		}
	}
}

func TestFastCheckBakeryThreeProcesses(t *testing.T) {
	// N=3 bakery: the state space grows but stays tractable for the fast
	// engine; exclusion must hold exhaustively.
	p := MustBakery(3, false)
	eng, err := NewEngineOrdering(p, 3, tso.TSO)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Check(context.Background(), 6_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation {
		t.Fatalf("N=3 bakery violated under TSO: %v", res.Schedule)
	}
	if !res.Complete {
		t.Logf("partial at %d states", res.States)
	} else {
		t.Logf("complete: %d states, %d transitions", res.States, res.Transitions)
	}
}

func TestLamportFastVerification(t *testing.T) {
	// N=2: complete TSO verification; the fast path makes the state space
	// small.
	eng, err := NewEngineOrdering(MustLamportFast(2), 2, tso.TSO)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Check(context.Background(), 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation {
		t.Fatalf("Lamport fast mutex violated under TSO: %v", res.Schedule)
	}
	if !res.Complete {
		t.Errorf("incomplete: %d states", res.States)
	}
	t.Logf("N=2: complete, %d states", res.States)
}

func TestLamportFastOnGoroutineEngine(t *testing.T) {
	p := MustLamportFast(3)
	for seed := int64(1); seed <= 8; seed++ {
		sim := runAdapted(t, p, tso.Config{N: 3}, tso.NewRandom(seed, 0.3))
		if v := sim.ExclusionViolation(); v != nil {
			t.Fatalf("seed %d: %v", seed, v)
		}
	}
}

func TestLamportFastSoloTakesFastPath(t *testing.T) {
	// A solo passage must not enter the slow path: count its events on the
	// goroutine engine (fast path = constant, small).
	p := MustLamportFast(8)
	sim, err := tso.NewSimulator(tso.Config{N: 8}, Adapt(p))
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Kill()
	for !sim.Done(0) {
		if _, err := sim.Step(0); err != nil {
			t.Fatal(err)
		}
	}
	events := len(sim.Execution().Events)
	// Fast path: Enter, flag write+fence(3), x write+fence(3), y read,
	// y write+fence(3), x read, CS, exit writes+fence(4), Exit ~ 20.
	if events > 25 {
		t.Errorf("solo passage took %d events; fast path expected <= 25", events)
	}
}

func TestFastMinimize(t *testing.T) {
	p := MustPeterson(false)
	eng, err := NewEngineOrdering(p, 2, tso.TSO)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Check(context.Background(), 0)
	if err != nil || !res.Violation {
		t.Fatalf("no violation: %v", err)
	}
	min, err := eng.Minimize(res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if len(min) > len(res.Schedule) {
		t.Fatal("minimization grew the schedule")
	}
	// 1-minimality.
	reproduces := func(cand []tso.Decision) bool {
		st := eng.Initial()
		for _, d := range cand {
			if eng.Apply(st, d) != nil {
				return false
			}
			if eng.Violated(st) {
				return true
			}
		}
		return false
	}
	if !reproduces(min) {
		t.Fatal("minimized schedule does not reproduce")
	}
	for i := range min {
		cand := append(append([]tso.Decision{}, min[:i]...), min[i+1:]...)
		if reproduces(cand) {
			t.Fatalf("not 1-minimal at %d", i)
		}
	}
	if _, err := eng.Minimize(nil); err == nil {
		t.Error("non-violating schedule must be rejected")
	}
	t.Logf("minimized %d -> %d", len(res.Schedule), len(min))
}

func TestAllDoneAndFullRun(t *testing.T) {
	// Drive a full TAS run on the fast engine alone (no checker): both
	// processes must complete and AllDone must flip.
	eng, err := NewEngineOrdering(MustTAS(), 2, tso.TSO)
	if err != nil {
		t.Fatal(err)
	}
	st := eng.Initial()
	if eng.AllDone(st) {
		t.Fatal("initial state cannot be done")
	}
	for guard := 0; !eng.AllDone(st); guard++ {
		if guard > 10000 {
			t.Fatalf("run did not converge; p0 pc=%d p1 pc=%d", st.Procs[0].PC, st.Procs[1].PC)
		}
		progressed := false
		for id := 0; id < 2; id++ {
			if st.Procs[id].Done {
				continue
			}
			if err := eng.Step(st, id); err != nil {
				t.Fatal(err)
			}
			progressed = true
		}
		if !progressed {
			t.Fatal("no runnable process")
		}
	}
	if st.Mem[0] != 0 {
		t.Errorf("lock not released: %d", st.Mem[0])
	}
}
