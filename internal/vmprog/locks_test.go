package vmprog

import (
	"context"
	"testing"

	"priceadaptive/internal/tso"
)

// TestRegistryBuilds instantiates every registered program at a couple of
// process counts and revalidates.
func TestRegistryBuilds(t *testing.T) {
	for _, e := range Registry() {
		for _, n := range []int{2, 3} {
			if e.FixedN > 0 {
				n = e.FixedN
			}
			p, err := e.Build(n)
			if err != nil {
				t.Fatalf("%s n=%d: %v", e.Name, n, err)
			}
			if err := p.Validate(); err != nil {
				t.Fatalf("%s n=%d: validate: %v", e.Name, n, err)
			}
			if e.FixedN > 0 {
				break
			}
		}
	}
}

// TestRegistryExclusion model-checks every registered program exhaustively
// at its smallest supported size: correct locks admit no exclusion
// violation, the deliberately broken variants must admit one.
func TestRegistryExclusion(t *testing.T) {
	for _, e := range Registry() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			n := 2
			if e.FixedN > 0 {
				n = e.FixedN
			}
			budget := 1 << 22
			if n > 2 && testing.Short() {
				t.Skip("large state space in -short mode")
			}
			p, err := e.Build(n)
			if err != nil {
				t.Fatal(err)
			}
			eng, err := NewEngineOrdering(p, n, tso.TSO)
			if err != nil {
				t.Fatal(err)
			}
			res, err := eng.Check(context.Background(), budget)
			if err != nil {
				t.Fatal(err)
			}
			if e.Broken {
				if !res.Violation {
					t.Fatalf("%s: broken variant not caught (states=%d complete=%v)",
						e.Name, res.States, res.Complete)
				}
				return
			}
			if res.Violation {
				t.Fatalf("%s: unexpected exclusion violation, schedule %v", e.Name, res.Schedule)
			}
			if !res.Complete {
				t.Fatalf("%s: exploration incomplete at %d states; raise budget", e.Name, res.States)
			}
		})
	}
}
