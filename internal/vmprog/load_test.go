package vmprog

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// TestLoadRoundTrip saves and reloads every registry program and requires a
// byte-for-byte identical structure.
func TestLoadRoundTrip(t *testing.T) {
	for _, e := range Registry() {
		n := 3
		if e.FixedN > 0 {
			n = e.FixedN
		}
		p, err := e.Build(n)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		var buf bytes.Buffer
		if err := p.Save(&buf); err != nil {
			t.Fatalf("%s: save: %v", e.Name, err)
		}
		q, err := Load(&buf)
		if err != nil {
			t.Fatalf("%s: load: %v", e.Name, err)
		}
		if !reflect.DeepEqual(p, q) {
			t.Fatalf("%s: round trip changed the program\nbefore %+v\nafter  %+v", e.Name, p, q)
		}
	}
}

// TestLoadMalformed feeds structurally broken programs to Load and requires
// an error mentioning the defect - never a panic and never silent
// acceptance.
func TestLoadMalformed(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // substring of the error
	}{
		{"garbage", `{]`, "decode"},
		{"unknown field", `{"name":"x","vars":["v"],"bogus":1,"code":[]}`, "bogus"},
		{"no name", `{"vars":["v"],"code":[{"op":15}]}`, "no name"},
		{"empty code", `{"name":"x","vars":["v"],"code":[]}`, "empty program"},
		{"no halt", `{"name":"x","vars":["v"],"code":[{"op":14}]}`, "end with Halt"},
		{"no cs", `{"name":"x","vars":["v"],"code":[{"op":15}]}`, "exactly one CS"},
		{"two cs", `{"name":"x","vars":["v"],"code":[{"op":14},{"op":14},{"op":15}]}`,
			"exactly one CS"},
		{"register out of range",
			`{"name":"x","vars":["v"],"code":[{"op":1,"a":8},{"op":14},{"op":15}]}`,
			"register 8 out of range"},
		{"negative register",
			`{"name":"x","vars":["v"],"code":[{"op":4,"a":0,"b":-1},{"op":14},{"op":15}]}`,
			"register -1 out of range"},
		{"variable base out of range",
			`{"name":"x","vars":["v"],"code":[{"op":10,"a":0,"base":1},{"op":14},{"op":15}]}`,
			"variable base 1 out of range"},
		{"index register out of range",
			`{"name":"x","vars":["v"],"code":[{"op":10,"a":0,"base":0,"index":8},{"op":14},{"op":15}]}`,
			"index register 8 out of range"},
		{"jump target out of range",
			`{"name":"x","vars":["v"],"code":[{"op":6,"target":9},{"op":14},{"op":15}]}`,
			"jump target 9 out of range"},
		{"negative jump target",
			`{"name":"x","vars":["v"],"code":[{"op":6,"target":-1},{"op":14},{"op":15}]}`,
			"jump target -1 out of range"},
		{"unknown opcode",
			`{"name":"x","vars":["v"],"code":[{"op":99},{"op":14},{"op":15}]}`,
			"unknown opcode 99"},
		{"bad class",
			`{"name":"x","vars":["v"],"class":7,"code":[{"op":14},{"op":15}]}`,
			"invalid adaptivity class"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Load(strings.NewReader(tc.src))
			if err == nil {
				t.Fatalf("malformed program accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestLoadDefaultsScalarIndex checks that an absent index field decodes as a
// scalar access (-1), not register 0.
func TestLoadDefaultsScalarIndex(t *testing.T) {
	src := `{"name":"x","vars":["v"],"code":[{"op":10,"a":0,"base":0},{"op":14},{"op":15}]}`
	p, err := Load(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Code[0].Index; got != -1 {
		t.Fatalf("absent index decoded as %d, want -1", got)
	}
}

// TestLoadRejectsDuplicateVarNames: two variables sharing a name would
// silently corrupt the analyzer's array-extent recovery.
func TestLoadRejectsDuplicateVarNames(t *testing.T) {
	src := `{"name":"x","vars":["v","v"],"code":[{"op":14},{"op":15}]}`
	_, err := Load(strings.NewReader(src))
	if err == nil || !strings.Contains(err.Error(), "duplicate variable") {
		t.Fatalf("duplicate variable names accepted: %v", err)
	}
}

// TestLoadSet exercises the multi-program loader: a valid set round-trips,
// duplicate program names are rejected, and per-program validation applies.
func TestLoadSet(t *testing.T) {
	a := MustPeterson(true)
	b := MustTAS()
	var buf bytes.Buffer
	buf.WriteString("[")
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	buf.WriteString(",")
	if err := b.Save(&buf); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("]")
	set, err := LoadSet(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 2 || set[0].Name != a.Name || set[1].Name != b.Name {
		t.Fatalf("set loaded wrong: %v", set)
	}

	buf.Reset()
	buf.WriteString("[")
	a.Save(&buf)
	buf.WriteString(",")
	a.Save(&buf)
	buf.WriteString("]")
	if _, err := LoadSet(bytes.NewReader(buf.Bytes())); err == nil ||
		!strings.Contains(err.Error(), "duplicate program name") {
		t.Fatalf("duplicate program names accepted: %v", err)
	}

	bad := `[{"name":"x","vars":["v"],"code":[{"op":15}]}]`
	if _, err := LoadSet(strings.NewReader(bad)); err == nil ||
		!strings.Contains(err.Error(), "exactly one CS") {
		t.Fatalf("invalid member accepted: %v", err)
	}
}

// TestHashDistinguishesPrograms: the cache key must separate programs that
// differ in any observable way and agree across a save/load round trip.
func TestHashDistinguishesPrograms(t *testing.T) {
	p := MustPeterson(true)
	h1, err := p.Hash()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := q.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("round trip changed the hash: %s vs %s", h1, h2)
	}
	nf := MustPeterson(false)
	h3, err := nf.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h3 == h1 {
		t.Fatal("distinct programs share a hash")
	}
}

// FuzzLoadProgram feeds arbitrary bytes (seeded with every registry
// program's saved JSON form) to Load and requires: no panics, and any
// accepted program survives validation, hashing, and a save/reload round
// trip to an identical structure.
func FuzzLoadProgram(f *testing.F) {
	for _, e := range Registry() {
		n := 3
		if e.FixedN > 0 {
			n = e.FixedN
		}
		p, err := e.Build(n)
		if err != nil {
			f.Fatalf("%s: %v", e.Name, err)
		}
		var buf bytes.Buffer
		if err := p.Save(&buf); err != nil {
			f.Fatalf("%s: %v", e.Name, err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte(`{"name":"x","vars":["v","v"],"code":[{"op":14},{"op":15}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("Load accepted a program Validate rejects: %v", err)
		}
		if _, err := p.Hash(); err != nil {
			t.Fatalf("accepted program does not hash: %v", err)
		}
		var buf bytes.Buffer
		if err := p.Save(&buf); err != nil {
			t.Fatalf("accepted program does not save: %v", err)
		}
		q, err := Load(&buf)
		if err != nil {
			t.Fatalf("saved form of accepted program rejected: %v", err)
		}
		if !reflect.DeepEqual(p, q) {
			t.Fatalf("round trip changed the program\nbefore %+v\nafter  %+v", p, q)
		}
	})
}
