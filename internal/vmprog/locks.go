package vmprog

import "fmt"

// Peterson builds the two-process Peterson lock as a VM program; withFences
// selects the TSO-correct variant.
func Peterson(withFences bool) (*Program, error) {
	name := "peterson-vm"
	if !withFences {
		name = "peterson-nofence-vm"
	}
	b := NewBuilder(name)
	b.SetClass(ClassNonAdaptive)
	flag := b.Array("flag", 2)
	turn := b.Var("turn")
	const (
		rMe, rOther, rOne, rTmp, rZero = 0, 1, 2, 3, 4
	)
	b.Me(rMe)
	b.Const(rOne, 1)
	b.Sub(rOther, rOne, rMe) // other = 1 - me
	b.Write(flag, rMe, rOne) // flag[me] = 1
	b.Write(turn, -1, rOther)
	if withFences {
		b.Fence()
	}
	b.Const(rZero, 0)
	b.Label("spin")
	b.Read(rTmp, flag, rOther)
	b.JumpIfEq(rTmp, rZero, "enter")
	b.Read(rTmp, turn, -1)
	b.JumpIfNe(rTmp, rOther, "enter")
	b.Jump("spin")
	b.Label("enter")
	b.CS()
	b.Write(flag, rMe, rZero)
	if withFences {
		b.Fence()
	}
	b.Halt()
	return b.Build()
}

// TAS builds a test-and-set lock (CAS retry loop) as a VM program.
func TAS() (*Program, error) {
	b := NewBuilder("tas-vm")
	b.SetClass(ClassAdaptive)
	lock := b.Var("lock")
	const (
		rMe, rOne, rToken, rZero, rObs = 0, 1, 2, 3, 4
	)
	b.Me(rMe)
	b.Const(rOne, 1)
	b.Add(rToken, rMe, rOne) // token = me + 1
	b.Const(rZero, 0)
	b.Label("try")
	b.CAS(rObs, lock, -1, rZero, rToken)
	b.JumpIfEq(rObs, rZero, "got")
	b.Jump("try")
	b.Label("got")
	b.CS()
	b.Write(lock, -1, rZero)
	b.Fence()
	b.Halt()
	return b.Build()
}

// Bakery builds Lamport's bakery for n processes as a VM program;
// weakDoorway elides the ticket-publication fence (TSO-safe, PSO-broken).
func Bakery(n int, weakDoorway bool) (*Program, error) {
	name := "bakery-vm"
	if weakDoorway {
		name = "bakery-weak-vm"
	}
	b := NewBuilder(name)
	b.SetClass(ClassNonAdaptive)
	choosing := b.Array("choosing", n)
	number := b.Array("number", n)
	const (
		rMe, rK, rMax, rVal, rOne, rN, rZero, rMine = 0, 1, 2, 3, 4, 5, 6, 7
	)
	b.Me(rMe)
	b.Procs(rN)
	b.Const(rOne, 1)
	b.Const(rZero, 0)
	// Doorway: choosing[me] := 1; fence.
	b.Write(choosing, rMe, rOne)
	b.Fence()
	// Ticket scan: max of number[0..n-1].
	b.Const(rMax, 0)
	b.Const(rK, 0)
	b.Label("scan")
	b.JumpIfEq(rK, rN, "scandone")
	b.Read(rVal, number, rK)
	b.JumpIfLt(rMax, rVal, "newmax")
	b.Jump("scannext")
	b.Label("newmax")
	b.Add(rMax, rVal, rZero)
	b.Label("scannext")
	b.Add(rK, rK, rOne)
	b.Jump("scan")
	b.Label("scandone")
	// Publish ticket: number[me] := max+1; choosing[me] := 0.
	b.Add(rMax, rMax, rOne)
	b.Write(number, rMe, rMax)
	b.Write(choosing, rMe, rZero)
	if !weakDoorway {
		b.Fence()
	}
	// Wait loop over every other process.
	b.Const(rK, 0)
	b.Label("wait")
	b.JumpIfEq(rK, rN, "cs")
	b.JumpIfEq(rK, rMe, "skip")
	b.Label("chwait")
	b.Read(rVal, choosing, rK)
	b.JumpIfEq(rVal, rOne, "chwait")
	b.Label("numwait")
	b.Read(rVal, number, rK)
	b.JumpIfEq(rVal, rZero, "skip")
	b.Read(rMine, number, rMe)
	b.JumpIfLt(rMine, rVal, "skip") // my ticket smaller: k defers to me
	b.JumpIfLt(rVal, rMine, "numwait")
	// Equal tickets: smaller ID wins; skip k when me < k.
	b.JumpIfLt(rMe, rK, "skip")
	b.Jump("numwait")
	b.Label("skip")
	b.Add(rK, rK, rOne)
	b.Jump("wait")
	b.Label("cs")
	b.CS()
	b.Write(number, rMe, rZero)
	b.Fence()
	b.Halt()
	return b.Build()
}

// MustPeterson is Peterson, panicking on error (the programs are static, so
// failure is a programming bug).
func MustPeterson(withFences bool) *Program {
	p, err := Peterson(withFences)
	if err != nil {
		panic(err)
	}
	return p
}

// MustTAS is TAS, panicking on error.
func MustTAS() *Program {
	p, err := TAS()
	if err != nil {
		panic(err)
	}
	return p
}

// MustBakery is Bakery, panicking on error.
func MustBakery(n int, weakDoorway bool) *Program {
	p, err := Bakery(n, weakDoorway)
	if err != nil {
		panic(err)
	}
	return p
}

// Dekker builds Dekker's algorithm (the first two-process mutex) as a VM
// program; withFences selects the TSO-correct variant. Like Peterson it
// needs a store-load fence after raising its intent flag.
func Dekker(withFences bool) (*Program, error) {
	name := "dekker-vm"
	if !withFences {
		name = "dekker-nofence-vm"
	}
	b := NewBuilder(name)
	b.SetClass(ClassNonAdaptive)
	wants := b.Array("wants", 2)
	turn := b.Var("turn")
	const (
		rMe, rOther, rOne, rTmp, rZero = 0, 1, 2, 3, 4
	)
	b.Me(rMe)
	b.Const(rOne, 1)
	b.Const(rZero, 0)
	b.Sub(rOther, rOne, rMe)
	b.Write(wants, rMe, rOne) // wants[me] = 1
	if withFences {
		b.Fence()
	}
	b.Label("check")
	b.Read(rTmp, wants, rOther)
	b.JumpIfEq(rTmp, rZero, "enter")
	b.Read(rTmp, turn, -1)
	b.JumpIfEq(rTmp, rMe, "check") // my turn: keep insisting
	// Other's turn: back off, wait for the turn, then retry.
	b.Write(wants, rMe, rZero)
	if withFences {
		b.Fence()
	}
	b.Label("backoff")
	b.Read(rTmp, turn, -1)
	b.JumpIfNe(rTmp, rMe, "backoff")
	b.Write(wants, rMe, rOne)
	if withFences {
		b.Fence()
	}
	b.Jump("check")
	b.Label("enter")
	b.CS()
	b.Write(turn, -1, rOther)
	b.Write(wants, rMe, rZero)
	if withFences {
		b.Fence()
	}
	b.Halt()
	return b.Build()
}

// MustDekker is Dekker, panicking on error.
func MustDekker(withFences bool) *Program {
	p, err := Dekker(withFences)
	if err != nil {
		panic(err)
	}
	return p
}

// LamportFast builds Lamport's fast mutual exclusion algorithm for n
// processes as a VM program. Its doorway is the classic splitter (x := me;
// check y; y := me; check x): an uncontended passage takes the fast path
// with O(1) accesses, which is the structural seed of every adaptive
// algorithm - and, per the paper, the reason such algorithms cannot keep
// O(1) fences. Writes are fenced individually (the algorithm's correctness
// needs each announcement visible before the next check).
func LamportFast(n int) (*Program, error) {
	b := NewBuilder("lamportfast-vm")
	b.SetClass(ClassAdaptive)
	x := b.Var("x") // splitter first coordinate; holds id+1
	y := b.Var("y") // splitter second coordinate; holds id+1, 0 = free
	flag := b.Array("flag", n)
	const (
		rMe1, rK, rTmp, rOne, rN, rZero, rMe = 0, 1, 2, 3, 4, 5, 6
	)
	b.Me(rMe)
	b.Const(rOne, 1)
	b.Const(rZero, 0)
	b.Procs(rN)
	b.Add(rMe1, rMe, rOne) // me+1, distinguishable from the 0 init
	b.Label("start")
	// flag[me] := 1; x := me.
	b.Write(flag, rMe, rOne)
	b.Fence()
	b.Write(x, -1, rMe1)
	b.Fence()
	// if y != 0: back off and retry.
	b.Read(rTmp, y, -1)
	b.JumpIfEq(rTmp, rZero, "yfree")
	b.Write(flag, rMe, rZero)
	b.Fence()
	b.Label("ywait")
	b.Read(rTmp, y, -1)
	b.JumpIfNe(rTmp, rZero, "ywait")
	b.Jump("start")
	b.Label("yfree")
	// y := me; if x == me: fast path into the CS.
	b.Write(y, -1, rMe1)
	b.Fence()
	b.Read(rTmp, x, -1)
	b.JumpIfEq(rTmp, rMe1, "cs")
	// Slow path: step back, wait for every announced process, and check
	// whether we still own y.
	b.Write(flag, rMe, rZero)
	b.Fence()
	b.Const(rK, 0)
	b.Label("scan")
	b.JumpIfEq(rK, rN, "scandone")
	b.Label("flagwait")
	b.Read(rTmp, flag, rK)
	b.JumpIfEq(rTmp, rOne, "flagwait")
	b.Add(rK, rK, rOne)
	b.Jump("scan")
	b.Label("scandone")
	b.Read(rTmp, y, -1)
	b.JumpIfEq(rTmp, rMe1, "cs")
	b.Label("ywait2")
	b.Read(rTmp, y, -1)
	b.JumpIfNe(rTmp, rZero, "ywait2")
	b.Jump("start")
	b.Label("cs")
	b.CS()
	// Exit: y := 0; flag[me] := 0.
	b.Write(y, -1, rZero)
	b.Write(flag, rMe, rZero)
	b.Fence()
	b.Halt()
	return b.Build()
}

// MustLamportFast is LamportFast, panicking on error.
func MustLamportFast(n int) *Program {
	p, err := LamportFast(n)
	if err != nil {
		panic(err)
	}
	return p
}

// Entry describes one registered VM program: how to instantiate it, the
// process counts it supports, and whether it is a deliberately broken
// variant that the static analyzer (cmd/padlint) is required to flag.
type Entry struct {
	// Name is the registry key (not necessarily the Program.Name).
	Name string
	// Doc is a one-line description for listings.
	Doc string
	// Build instantiates the program for n processes.
	Build func(n int) (*Program, error)
	// FixedN, when non-zero, is the only process count the program
	// supports; Build ignores its argument then.
	FixedN int
	// Broken marks variants that deliberately elide required fences; the
	// lint gate requires at least one error-severity diagnostic on them.
	Broken bool
	// CrashBroken marks variants whose defect only manifests under
	// crashes: crash-free model checking finds no exclusion violation
	// (and the exclusion tests expect none), but the lint gate still
	// requires an error-severity diagnostic and the recoverability
	// checker must reject the program.
	CrashBroken bool
	// Recoverable declares the expected recoverability verdict under a
	// bounded crash adversary. The RME ports (rtas, km-rme, dm-tas,
	// dm-queue) recover by design. A program without a recover section
	// restarts the passage from its entry against the crashed
	// incarnation's own committed protocol state; locks whose doorway
	// rewrites all of that state on every attempt (peterson, dekker,
	// filter, bakery, burnslynch) are restart-recoverable, while one-shot
	// structures fault or wedge (anderson, caschain, clh, mcs) and the
	// TAS family spins forever on its own stale lock word.
	Recoverable bool
}

// Registry lists every registered VM program, sorted by name. internal/mutex
// counterparts exist for the crash-free tier (yanganderson is represented by
// the structurally equivalent tournament tree); of the RME tier only rtas
// has one, the rest exist as VM programs only.
func Registry() []Entry {
	return []Entry{
		{Name: "anderson", Doc: "Anderson array queue lock (one-shot, CAS fetch-and-increment)",
			Build: Anderson},
		{Name: "bakery", Doc: "Lamport bakery, fenced doorway",
			Build: func(n int) (*Program, error) { return Bakery(n, false) }, Recoverable: true},
		{Name: "bakery-weak", Doc: "bakery without the ticket-publication fence (TSO-broken)",
			Build: func(n int) (*Program, error) { return Bakery(n, true) }, Broken: true},
		{Name: "burnslynch", Doc: "Burns-Lynch one-bit mutual exclusion",
			Build: BurnsLynch, Recoverable: true},
		{Name: "caschain", Doc: "adaptive one-shot CAS chain",
			Build: CASChain},
		{Name: "clh", Doc: "CLH implicit-queue lock (one-shot)",
			Build: CLH},
		{Name: "dekker", Doc: "Dekker's algorithm, fenced",
			Build: func(int) (*Program, error) { return Dekker(true) }, FixedN: 2, Recoverable: true},
		{Name: "dekker-nofence", Doc: "Dekker without fences (TSO-broken)",
			Build: func(int) (*Program, error) { return Dekker(false) }, FixedN: 2, Broken: true},
		{Name: "dm-queue", Doc: "Dhoked-Mittal-style recoverable slot-queue lock (MCS-class handoff)",
			Build: DMQueue, Recoverable: true},
		{Name: "dm-tas", Doc: "Dhoked-Mittal-style recoverable TAS (checkpoint + crash counter)",
			Build: DMTAS, Recoverable: true},
		{Name: "filter", Doc: "n-process filter lock",
			Build: Filter, Recoverable: true},
		{Name: "km-rme", Doc: "Katzan-Morrison-style recoverable lock (owner stamp + staged CAS)",
			Build: KMRME, Recoverable: true},
		{Name: "lamportfast", Doc: "Lamport's fast mutex (splitter doorway)",
			Build: LamportFast},
		{Name: "mcs", Doc: "MCS queue lock (CAS-emulated swap, one-shot)",
			Build: MCS},
		{Name: "peterson", Doc: "two-process Peterson, fenced",
			Build: func(int) (*Program, error) { return Peterson(true) }, FixedN: 2, Recoverable: true},
		{Name: "peterson-nofence", Doc: "Peterson without fences (TSO-broken)",
			Build: func(int) (*Program, error) { return Peterson(false) }, FixedN: 2, Broken: true},
		{Name: "rtas", Doc: "Golab-Ramaraju recoverable test-and-set (owner-stamped lock word)",
			Build: func(int) (*Program, error) { return RTAS() }, Recoverable: true},
		{Name: "rtas-dirty", Doc: "recoverable TAS with a buffered, unfenced checkpoint (crash-broken)",
			Build: RTASDirty, CrashBroken: true},
		{Name: "synthetic", Doc: "adaptive read/write splitter chain, fenced",
			Build: func(n int) (*Program, error) { return Synthetic(n, true) }},
		{Name: "synthetic-nofence", Doc: "splitter chain without fences (TSO-broken)",
			Build: func(n int) (*Program, error) { return Synthetic(n, false) }, Broken: true},
		{Name: "tas", Doc: "test-and-set via CAS retry",
			Build: func(int) (*Program, error) { return TAS() }},
		{Name: "tournament", Doc: "binary tournament of Peterson locks (4 processes); restart-recoverable under the 2-crash adversary (decided verdict: 31,672,898 crash states, see check.TestTournamentVerdictDecided)",
			Build: func(int) (*Program, error) { return Tournament4() }, FixedN: 4, Recoverable: true},
		{Name: "ttas", Doc: "test-and-test-and-set via CAS retry",
			Build: func(int) (*Program, error) { return TTAS() }},
	}
}

// LookupEntry returns the registry entry for name.
func LookupEntry(name string) (Entry, error) {
	for _, e := range Registry() {
		if e.Name == name {
			return e, nil
		}
	}
	return Entry{}, fmt.Errorf("vmprog: unknown program %q (have %v)", name, Names())
}

// Lookup returns the VM program registered under name, instantiated for n
// processes where the program is size-parametric.
func Lookup(name string, n int) (*Program, error) {
	e, err := LookupEntry(name)
	if err != nil {
		return nil, err
	}
	if e.FixedN > 0 {
		n = e.FixedN
	}
	return e.Build(n)
}

// Names lists the registered VM program names.
func Names() []string {
	reg := Registry()
	out := make([]string, len(reg))
	for i, e := range reg {
		out[i] = e.Name
	}
	return out
}
