package vmprog

import (
	"context"
	"fmt"

	"priceadaptive/internal/tso"
)

// Crash models a crash-stop failure of process id, mirroring
// tso.Simulator.Crash on the fast engine: the write buffer and every
// volatile register are discarded, the in-flight fence and the passage
// position are forgotten, and the PC parks at the program's recover entry
// (pc 0 when the program has none, i.e. recovery re-runs the passage from
// the top). Committed shared memory persists. Crashing is legal for a
// started, non-done, non-crashed process; the next Step of the process
// executes its Recover transition.
func (e *Engine) Crash(s *State, id int) error {
	if id < 0 || id >= e.n {
		return errInvalidDecision
	}
	p := &s.Procs[id]
	if !p.Started || p.Done || p.Crashed {
		return errInvalidDecision
	}
	p.Buf = nil
	p.Regs = [NumRegs]uint64{}
	p.Fencing = false
	p.InExit = false
	p.PC = e.prog.Recover
	p.Crashed = true
	p.CrashCount++
	s.Crashes++
	return nil
}

// CrashOpts bounds crash injection during crash-enabled exploration.
type CrashOpts struct {
	// MaxCrashes is the total crash budget over all processes; 0 disables
	// crash injection entirely.
	MaxCrashes int
	// MaxPerProc bounds the crashes of any single process; 0 means only
	// the total budget applies.
	MaxPerProc int
}

// crashDecisions appends the enabled crash decisions in s under o.
func (e *Engine) crashDecisions(s *State, o CrashOpts, out []tso.Decision) []tso.Decision {
	if o.MaxCrashes <= 0 || s.Crashes >= o.MaxCrashes {
		return out
	}
	for id := range s.Procs {
		p := &s.Procs[id]
		if !p.Started || p.Done || p.Crashed {
			continue
		}
		if o.MaxPerProc > 0 && p.CrashCount >= o.MaxPerProc {
			continue
		}
		out = append(out, tso.Decision{P: tso.ProcID(id), Crash: true})
	}
	return out
}

// EnabledDecisions enumerates every enabled scheduling decision in s:
// steps, commits, and - under a non-zero crash budget - crash decisions.
// It is the enumeration the crash-schedule search and the crash fuzzer
// drive the engine with.
func (e *Engine) EnabledDecisions(s *State, o CrashOpts) []tso.Decision {
	return e.crashDecisions(s, o, e.decisions(s))
}

// RecovResult is the outcome of a crash-enabled recoverability check.
type RecovResult struct {
	// States and Transitions count the explored graph.
	States      int
	Transitions int
	// Complete reports that the check reached a verdict: either the full
	// crash-bounded state space was explored, or a decisive counterexample
	// (violation or post-crash fault) was found early. It is false only
	// when the state budget ran out first.
	Complete bool
	// Violation reports a mutual-exclusion violation (possibly requiring
	// crashes to provoke); ViolationSchedule reproduces it from the
	// initial state on an unreduced engine.
	Violation         bool
	ViolationSchedule []tso.Decision
	// Fault reports a post-crash runtime fault: re-executing the passage
	// against the crashed incarnation's committed protocol state escaped
	// the program's domain (e.g. a one-shot fetch-and-increment handing
	// out a slot index past its array). A fault is decisive
	// non-recoverability. FaultSchedule reproduces it: replaying on an
	// unreduced engine, the final decision fails with FaultErr.
	Fault         bool
	FaultErr      string
	FaultSchedule []tso.Decision
	// Stuck reports a reachable state from which no continuation completes
	// all passages - the post-crash livelock of a non-recoverable lock
	// (e.g. a TAS whose owner crashed while holding the committed lock
	// word). StuckSchedule drives an unreduced engine into such a state.
	Stuck         bool
	StuckSchedule []tso.Decision
	// Recoverable is the verdict: the exploration completed, exclusion
	// held in every reachable state, and every reachable state can still
	// complete every passage.
	Recoverable bool
}

// CheckRecoverable explores the crash-bounded state space exhaustively and
// decides recoverability: mutual exclusion must hold in every reachable
// state and every reachable state must be able to reach completion
// (AllDone). The second condition is the co-reachability check that
// separates recoverable locks from locks that merely never violate
// exclusion after a crash but wedge forever (a crashed TAS owner leaves
// the lock word set; every process spins).
//
// With pruning facts installed only the state normalizations are used
// (dead-register zeroing and symmetry canonicalization, both bisimulations
// that preserve co-reachability); ample-set reduction is never applied,
// because a process that can still crash re-enters through the recover
// section and invalidates the static future footprints - crash transitions
// are never independent of anything.
func (e *Engine) CheckRecoverable(ctx context.Context, maxStates int, o CrashOpts) (*RecovResult, error) {
	if maxStates <= 0 {
		maxStates = 1 << 20
	}
	res := &RecovResult{}
	r := e.red
	canon := func(s *State) (*State, []int) {
		if r == nil {
			return s, nil
		}
		return r.canonicalize(s)
	}
	type node struct {
		st     *State
		parent int
		dec    tso.Decision // real-frame decision applied at the parent
		cum    []int        // real slot -> current slot; nil = identity
		done   bool
	}
	root, rootPerm := canon(e.Initial())
	nodes := []node{{st: root, parent: -1, cum: rootPerm}}
	seen := map[uint64]int{e.hash(root): 0}
	succs := [][]int{nil}
	// path reconstructs the real-frame schedule into node i.
	path := func(i int) []tso.Decision {
		var rev []tso.Decision
		for ; i > 0; i = nodes[i].parent {
			rev = append(rev, nodes[i].dec)
		}
		out := make([]tso.Decision, len(rev))
		for k := range rev {
			out[k] = rev[len(rev)-1-k]
		}
		return out
	}
	for i := 0; i < len(nodes); i++ {
		if i&0xfff == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if e.Violated(nodes[i].st) {
			res.States = len(nodes)
			res.Complete = true
			res.Violation = true
			res.ViolationSchedule = path(i)
			return res, nil
		}
		if e.AllDone(nodes[i].st) {
			nodes[i].done = true
			continue
		}
		if len(nodes) > maxStates {
			res.States = len(nodes)
			return res, nil // Complete stays false: no verdict
		}
		st, cum := nodes[i].st, nodes[i].cum
		decs := e.crashDecisions(st, o, e.decisions(st))
		for _, d := range decs {
			child := st.Clone()
			if err := e.Apply(child, d); err != nil {
				if st.Crashes == 0 {
					// Crash-free faults are program bugs, not verdicts.
					return nil, fmt.Errorf("vmprog: recoverability check: %w", err)
				}
				res.States = len(nodes)
				res.Complete = true
				res.Fault = true
				res.FaultErr = err.Error()
				res.FaultSchedule = append(path(i), realDecision(r, d, cum))
				return res, nil
			}
			res.Transitions++
			cc, perm := canon(child)
			h := e.hash(cc)
			j, ok := seen[h]
			if !ok {
				j = len(nodes)
				seen[h] = j
				nodes = append(nodes, node{st: cc, parent: i, dec: realDecision(r, d, cum), cum: compose(perm, cum, e.n)})
				succs = append(succs, nil)
			}
			succs[i] = append(succs[i], j)
		}
	}
	res.States = len(nodes)
	res.Complete = true
	// Co-reachability of completion: reverse BFS from the AllDone states.
	preds := make([][]int, len(nodes))
	for i, ss := range succs {
		for _, j := range ss {
			preds[j] = append(preds[j], i)
		}
	}
	coreach := make([]bool, len(nodes))
	var queue []int
	for i := range nodes {
		if nodes[i].done {
			coreach[i] = true
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		j := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, i := range preds[j] {
			if !coreach[i] {
				coreach[i] = true
				queue = append(queue, i)
			}
		}
	}
	for i := range nodes {
		if !coreach[i] {
			res.Stuck = true
			res.StuckSchedule = path(i)
			break
		}
	}
	res.Recoverable = !res.Violation && !res.Stuck && !res.Fault
	return res, nil
}
