package vmprog

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"priceadaptive/internal/tso"
)

// ParallelOpts configures the parallel frontier engine (CheckParallel and
// CheckRecoverableParallel).
type ParallelOpts struct {
	// Workers is the worker (and seen-set shard) count; <= 0 means
	// runtime.GOMAXPROCS(0). Results are identical for every worker count:
	// the layered search with the frozen-layer proviso makes the explored
	// graph, the counts and the reconstructed witnesses a function of the
	// program alone, not of scheduling.
	Workers int
	// MaxStates bounds the exploration; <= 0 means 1<<20, matching the
	// sequential engines. The budget is checked at layer barriers, so an
	// incomplete run may overshoot by up to one layer (deterministically).
	MaxStates int
	// BitstateBits, when non-zero, switches CheckParallel to bitstate
	// hashing with 1<<BitstateBits bits (two hash functions per state)
	// instead of exact sharded seen-sets. The result is marked
	// Probabilistic: hash collisions silently merge distinct states, so a
	// clean pass is evidence, not proof. Violations found remain real
	// (every schedule is replayable). Not applicable to recoverability,
	// which needs exact state identity for co-reachability.
	BitstateBits uint
}

// encDec packs a real-frame decision into a breadcrumb word: process id in
// bits 0-7, commit flag in bit 8, crash flag in bit 9, VarPlus1 in bits 10+.
func encDec(d tso.Decision) uint32 {
	v := uint32(d.P) & 0xff
	if d.Commit {
		v |= 1 << 8
	}
	if d.Crash {
		v |= 1 << 9
	}
	v |= uint32(d.VarPlus1) << 10
	return v
}

// rootDec marks the root breadcrumb (no inbound decision).
const rootDec = ^uint32(0)

func decDec(v uint32) tso.Decision {
	return tso.Decision{
		P:        tso.ProcID(v & 0xff),
		Commit:   v&(1<<8) != 0,
		Crash:    v&(1<<9) != 0,
		VarPlus1: int(v >> 10),
	}
}

// pcrumb is the per-state breadcrumb kept in the sharded seen-sets: enough
// to reconstruct an exact real-frame schedule into the state (parent hash +
// inbound decision), the discovery layer for the frozen-layer proviso, and a
// dense node id for the recoverability graph. States themselves are dropped
// once expanded; only breadcrumbs persist.
type pcrumb struct {
	parent uint64
	dec    uint32
	layer  int32
	id     uint32 // shard-local dense id (recoverable mode)
	qidx   uint32 // index into the shard's pending next-queue
}

// pitem is a frontier entry: a state awaiting expansion in the next layer.
type pitem struct {
	st  *State
	h   uint64
	id  uint32 // global dense id (recoverable mode)
	cum []int  // real slot -> current slot; nil = identity
}

// pshard is one hash partition of the seen-set. The owning worker drains its
// next-queue first; other workers steal chunks when theirs run dry.
type pshard struct {
	mu    sync.Mutex
	seen  map[uint64]pcrumb // guarded by mu
	next  []pitem           // guarded by mu
	count int               // guarded by mu
	byID  []uint64          // guarded by mu; local id -> hash (recoverable mode)
}

// pgraph is the shared exploration state of one parallel run.
type pgraph struct {
	shards []pshard
	recov  bool
	stop   atomic.Bool
	mu     sync.Mutex
	err    error // guarded by mu
}

func newPGraph(shards int, recov bool) *pgraph {
	g := &pgraph{shards: make([]pshard, shards), recov: recov}
	for i := range g.shards {
		g.shards[i].seen = make(map[uint64]pcrumb) // padvet:allow lockguard construction: g is not shared yet
	}
	return g
}

func (g *pgraph) fail(err error) {
	g.mu.Lock()
	if g.err == nil {
		g.err = err
	}
	g.mu.Unlock()
	g.stop.Store(true)
}

func (g *pgraph) lookup(h uint64) (pcrumb, bool) {
	sh := &g.shards[h%uint64(len(g.shards))]
	sh.mu.Lock()
	c, ok := sh.seen[h]
	sh.mu.Unlock()
	return c, ok
}

// insert routes a state to its owning shard and records it for the next
// layer if unseen. When the state was already discovered in the same layer
// from a different parent, the breadcrumb with the smallest (parent hash,
// decision) pair wins — insertion order within a layer is scheduling-
// dependent, the tie-break makes the surviving breadcrumb (and with it every
// reconstructed witness) deterministic again. It returns the state's global
// dense id (recoverable mode only).
func (g *pgraph) insert(parentH uint64, dec uint32, child *State, h uint64, cum []int, layer int32) uint32 {
	s := uint32(len(g.shards))
	idx := uint32(h % uint64(s))
	sh := &g.shards[idx]
	sh.mu.Lock()
	if c, ok := sh.seen[h]; ok {
		if c.layer == layer+1 && (parentH < c.parent || (parentH == c.parent && dec < c.dec)) {
			c.parent, c.dec = parentH, dec
			sh.seen[h] = c
			// The queued frontier entry must carry the winning route's
			// cumulative permutation: successor decisions are translated to
			// the real frame through it, and a schedule whose prefix follows
			// one route but whose suffix was translated through another lands
			// in a symmetric image instead of the witnessed state.
			sh.next[c.qidx].cum = cum
		}
		gid := c.id*s + idx
		sh.mu.Unlock()
		return gid
	}
	local := uint32(sh.count)
	sh.seen[h] = pcrumb{parent: parentH, dec: dec, layer: layer + 1, id: local, qidx: uint32(len(sh.next))}
	sh.count++
	if g.recov {
		sh.byID = append(sh.byID, h)
	}
	gid := local*s + idx
	sh.next = append(sh.next, pitem{st: child, h: h, id: gid, cum: cum})
	sh.mu.Unlock()
	return gid
}

// countStates sums the shard populations. Call only at a layer barrier.
func (g *pgraph) countStates() int {
	total := 0
	for i := range g.shards {
		total += g.shards[i].count // padvet:allow lockguard layer barrier: the coordinator runs alone, workers are parked
	}
	return total
}

// takeFronts detaches every shard's next-queue. Call only at a layer barrier.
func (g *pgraph) takeFronts() [][]pitem {
	fronts := make([][]pitem, len(g.shards))
	for i := range g.shards {
		fronts[i] = g.shards[i].next // padvet:allow lockguard layer barrier: the coordinator runs alone, workers are parked
		g.shards[i].next = nil       // padvet:allow lockguard layer barrier: the coordinator runs alone, workers are parked
	}
	return fronts
}

// path reconstructs the real-frame schedule into the state with hash h by
// walking breadcrumbs root-ward. Breadcrumb layers strictly decrease along
// the walk, so it terminates at the root (layer 0).
func (g *pgraph) path(h uint64) []tso.Decision {
	var rev []tso.Decision
	for {
		c, ok := g.lookup(h)
		if !ok || c.dec == rootDec {
			break
		}
		rev = append(rev, decDec(c.dec))
		h = c.parent
	}
	out := make([]tso.Decision, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// workerClone builds an engine sharing the (immutable) program and facts but
// owning private reducer scratch, so workers canonicalize concurrently.
func (e *Engine) workerClone() *Engine {
	ne := &Engine{prog: e.prog, n: e.n, ord: e.ord, facts: e.facts}
	if e.facts != nil {
		ne.red = newReducer(ne, e.facts)
	}
	return ne
}

// pworker is one exploration worker. Counters and candidates are merged (and
// reset) by the coordinator at every layer barrier.
type pworker struct {
	eng   *Engine
	g     *pgraph
	ctx   context.Context // padvet:allow ctx-field run root: a worker lives for one Check call
	layer int32
	ticks int

	transitions int
	ampleSteps  int
	crossShard  int

	viol  bool
	violH uint64

	// Recoverable mode.
	crash    CrashOpts
	edgeFrom []uint32
	edgeTo   []uint32
	doneIDs  []uint32
	fault    bool
	faultH   uint64
	faultDec uint32
	faultErr string
}

func (w *pworker) canon(s *State) (*State, []int) {
	if w.eng.red == nil {
		return s, nil
	}
	return w.eng.red.canonicalize(s)
}

func (w *pworker) tick() bool {
	w.ticks++
	if w.ticks&0xff == 0 {
		if err := w.ctx.Err(); err != nil {
			w.g.fail(err)
			return false
		}
	}
	return true
}

// insert canonical child cc (produced from parent by d under permutation
// perm) into the graph.
func (w *pworker) insert(parent pitem, d tso.Decision, cc *State, perm []int) uint32 {
	h := w.eng.hash(cc)
	s := uint64(len(w.g.shards))
	if h%s != parent.h%s {
		w.crossShard++
	}
	dec := encDec(realDecision(w.eng.red, d, parent.cum))
	return w.g.insert(parent.h, dec, cc, h, compose(perm, parent.cum, w.eng.n), w.layer)
}

// expand explores one state of the current layer (crash-free mode), applying
// ample-set reduction with the frozen-layer proviso: the ample choice is
// discarded iff some ample successor was first discovered in a layer <= the
// current one. Entries inserted during the current layer carry layer+1 and
// never trigger it, so the proviso — unlike the sequential DFS's
// visited-at-expansion test — is independent of scheduling and worker count.
// Soundness (C3): on any cycle of ample-expanded states, the state with the
// maximum discovery layer L has its cycle successor discovered at a layer
// <= L, which forces full expansion of that state, a contradiction.
func (w *pworker) expand(it pitem) {
	if !w.tick() {
		return
	}
	e := w.eng
	if e.Violated(it.st) {
		if !w.viol || it.h < w.violH {
			w.viol, w.violH = true, it.h
		}
		return
	}
	if e.red != nil {
		if id, ok := e.ampleProcess(it.st); ok {
			amp := e.procDecisions(it.st, id, nil)
			kids := make([]*State, len(amp))
			perms := make([][]int, len(amp))
			proviso := false
			for i, d := range amp {
				child := it.st.Clone()
				if err := e.Apply(child, d); err != nil {
					w.g.fail(fmt.Errorf("vmprog: parallel check: %w", err))
					return
				}
				kids[i], perms[i] = w.canon(child)
				if c, ok := w.g.lookup(e.hash(kids[i])); ok && c.layer <= w.layer {
					proviso = true
				}
			}
			if !proviso {
				w.ampleSteps++
				w.transitions += len(amp)
				for i, d := range amp {
					w.insert(it, d, kids[i], perms[i])
				}
				return
			}
		}
	}
	for _, d := range e.decisions(it.st) {
		child := it.st.Clone()
		if err := e.Apply(child, d); err != nil {
			w.g.fail(fmt.Errorf("vmprog: parallel check: %w", err))
			return
		}
		w.transitions++
		cc, perm := w.canon(child)
		w.insert(it, d, cc, perm)
	}
}

// expandRecov explores one state of the current layer in crash-enabled
// recoverability mode: no ample reduction (crashes are never independent),
// normalizations apply, and successor edges plus AllDone flags are logged
// for the co-reachability pass. Post-crash runtime faults become candidate
// counterexamples; the (state hash, decision)-minimal one is selected at the
// barrier so the reported fault is deterministic.
func (w *pworker) expandRecov(it pitem) {
	if !w.tick() {
		return
	}
	e := w.eng
	if e.Violated(it.st) {
		if !w.viol || it.h < w.violH {
			w.viol, w.violH = true, it.h
		}
		return
	}
	if e.AllDone(it.st) {
		w.doneIDs = append(w.doneIDs, it.id)
		return
	}
	for _, d := range e.crashDecisions(it.st, w.crash, e.decisions(it.st)) {
		child := it.st.Clone()
		if err := e.Apply(child, d); err != nil {
			if it.st.Crashes == 0 {
				// Crash-free faults are program bugs, not verdicts.
				w.g.fail(fmt.Errorf("vmprog: recoverability check: %w", err))
				return
			}
			rd := encDec(realDecision(e.red, d, it.cum))
			if !w.fault || it.h < w.faultH || (it.h == w.faultH && rd < w.faultDec) {
				w.fault, w.faultH, w.faultDec, w.faultErr = true, it.h, rd, err.Error()
			}
			continue
		}
		w.transitions++
		cc, perm := w.canon(child)
		gid := w.insert(it, d, cc, perm)
		w.edgeFrom = append(w.edgeFrom, it.id)
		w.edgeTo = append(w.edgeTo, gid)
	}
}

// runLayer expands every frontier item of the current layer across the
// workers and blocks until the layer is drained (or a worker failed). Worker
// w drains shard w's queue first; exhausted workers steal chunks from the
// other shards via the per-shard atomic cursors.
func runLayer(ws []*pworker, fronts [][]pitem, layer int32, recov bool) {
	g := ws[0].g
	cursors := make([]atomic.Int64, len(fronts))
	const chunk = 16
	var wg sync.WaitGroup
	for wi := range ws {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			w := ws[wi]
			w.layer = layer
			for off := 0; off < len(fronts); off++ {
				fi := (wi + off) % len(fronts)
				items := fronts[fi]
				for {
					if g.stop.Load() {
						return
					}
					start := int(cursors[fi].Add(chunk)) - chunk
					if start >= len(items) {
						break
					}
					end := start + chunk
					if end > len(items) {
						end = len(items)
					}
					for k := start; k < end; k++ {
						if recov {
							w.expandRecov(items[k])
						} else {
							w.expand(items[k])
						}
					}
				}
			}
		}(wi)
	}
	wg.Wait()
}

func parallelWorkers(o ParallelOpts) (workers, maxStates int) {
	workers = o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	maxStates = o.MaxStates
	if maxStates <= 0 {
		maxStates = 1 << 20
	}
	return workers, maxStates
}

// CheckParallel explores the reachable state space with the parallel
// frontier engine: a layered (breadth-style) search over hash-partitioned
// seen-set shards, one worker per shard, with chunked work stealing inside
// each layer. It decides exactly what the sequential Check decides, composes
// with the same reduction facts (ample sets via the order-independent
// frozen-layer proviso, liveness and symmetry normalization), and
// reconstructs exact real-frame schedules from per-shard breadcrumbs. For a
// fixed program and options the verdict, the state and transition counts and
// the reported schedule are identical for every worker count.
//
// With BitstateBits set the exact seen-sets are replaced by a double-hashed
// bit array and the result is marked Probabilistic (see ParallelOpts).
func (e *Engine) CheckParallel(ctx context.Context, o ParallelOpts) (*CheckResult, error) {
	if o.BitstateBits > 0 {
		return e.checkBitstate(ctx, o)
	}
	workers, maxStates := parallelWorkers(o)
	g := newPGraph(workers, false)
	ws := make([]*pworker, workers)
	for i := range ws {
		ws[i] = &pworker{eng: e.workerClone(), g: g, ctx: ctx}
	}
	res := &CheckResult{Complete: true}
	root, rootPerm := ws[0].canon(ws[0].eng.Initial())
	rh := ws[0].eng.hash(root)
	g.insert(rh, rootDec, root, rh, rootPerm, -1)
	fronts := g.takeFronts()
	for layer := int32(0); ; layer++ {
		runLayer(ws, fronts, layer, false)
		if g.err != nil { // padvet:allow lockguard layer barrier: the coordinator runs alone, workers are parked
			return nil, g.err // padvet:allow lockguard layer barrier: the coordinator runs alone, workers are parked
		}
		viol, violH := false, uint64(0)
		for _, w := range ws {
			res.Transitions += w.transitions
			res.AmpleSteps += w.ampleSteps
			res.crossShard += w.crossShard
			w.transitions, w.ampleSteps, w.crossShard = 0, 0, 0
			if w.viol && (!viol || w.violH < violH) {
				viol, violH = true, w.violH
			}
			w.viol = false
		}
		res.States = g.countStates()
		if viol {
			res.Violation = true
			res.Schedule = g.path(violH)
			res.Complete = false
			return res, nil
		}
		if res.States > maxStates {
			res.Complete = false
			return res, nil
		}
		fronts = g.takeFronts()
		empty := true
		for _, f := range fronts {
			if len(f) > 0 {
				empty = false
				break
			}
		}
		if empty {
			return res, nil
		}
	}
}

// CheckRecoverableParallel decides crash-bounded recoverability with the
// parallel frontier engine. Semantics match CheckRecoverable: exclusion in
// every reachable state plus co-reachability of completion, normalizations
// applied, ample reduction never. Unlike the sequential checker it drops
// states once expanded — only breadcrumbs, dense successor edges and AllDone
// flags persist — cutting the per-state memory by roughly an order of
// magnitude, which is what lets crash spaces beyond the sequential checker's
// reach (the tournament lock at n=4) run to completion. Verdicts, counts and
// witnesses are identical for every worker count; the stuck witness is the
// (layer, hash)-minimal non-co-reachable state.
func (e *Engine) CheckRecoverableParallel(ctx context.Context, o ParallelOpts, crash CrashOpts) (*RecovResult, error) {
	if o.BitstateBits > 0 {
		return nil, errors.New("vmprog: bitstate hashing cannot decide recoverability: co-reachability needs exact state identity")
	}
	workers, maxStates := parallelWorkers(o)
	g := newPGraph(workers, true)
	ws := make([]*pworker, workers)
	for i := range ws {
		ws[i] = &pworker{eng: e.workerClone(), g: g, ctx: ctx, crash: crash}
	}
	res := &RecovResult{}
	root, rootPerm := ws[0].canon(ws[0].eng.Initial())
	rh := ws[0].eng.hash(root)
	g.insert(rh, rootDec, root, rh, rootPerm, -1)
	fronts := g.takeFronts()
	for layer := int32(0); ; layer++ {
		runLayer(ws, fronts, layer, true)
		if g.err != nil { // padvet:allow lockguard layer barrier: the coordinator runs alone, workers are parked
			return nil, g.err // padvet:allow lockguard layer barrier: the coordinator runs alone, workers are parked
		}
		viol, violH := false, uint64(0)
		fault, faultH, faultDec, faultErr := false, uint64(0), uint32(0), ""
		for _, w := range ws {
			res.Transitions += w.transitions
			w.transitions = 0
			if w.viol && (!viol || w.violH < violH) {
				viol, violH = true, w.violH
			}
			if w.fault && (!fault || w.faultH < faultH || (w.faultH == faultH && w.faultDec < faultDec)) {
				fault, faultH, faultDec, faultErr = true, w.faultH, w.faultDec, w.faultErr
			}
			w.viol, w.fault = false, false
		}
		res.States = g.countStates()
		if viol {
			res.Complete = true
			res.Violation = true
			res.ViolationSchedule = g.path(violH)
			return res, nil
		}
		if fault {
			res.Complete = true
			res.Fault = true
			res.FaultErr = faultErr
			res.FaultSchedule = append(g.path(faultH), decDec(faultDec))
			return res, nil
		}
		if res.States > maxStates {
			return res, nil // Complete stays false: no verdict
		}
		fronts = g.takeFronts()
		empty := true
		for _, f := range fronts {
			if len(f) > 0 {
				empty = false
				break
			}
		}
		if empty {
			break
		}
	}
	res.Complete = true
	// Co-reachability of completion over the dense graph: reverse BFS from
	// the AllDone states along a CSR predecessor index built from the
	// workers' edge logs.
	s := uint32(len(g.shards))
	n := uint32(0)
	for idx := range g.shards {
		if c := g.shards[idx].count; c > 0 { // padvet:allow lockguard post-exploration: the layer loop has exited, workers are joined
			if top := uint32(c-1)*s + uint32(idx) + 1; top > n {
				n = top
			}
		}
	}
	edges := 0
	for _, w := range ws {
		edges += len(w.edgeTo)
	}
	cnt := make([]uint32, n+1)
	for _, w := range ws {
		for _, j := range w.edgeTo {
			cnt[j+1]++
		}
	}
	for i := uint32(1); i <= n; i++ {
		cnt[i] += cnt[i-1]
	}
	preds := make([]uint32, edges)
	fill := make([]uint32, n)
	for _, w := range ws {
		for k, j := range w.edgeTo {
			preds[cnt[j]+fill[j]] = w.edgeFrom[k]
			fill[j]++
		}
	}
	coreach := make([]bool, n)
	var queue []uint32
	for _, w := range ws {
		for _, id := range w.doneIDs {
			if !coreach[id] {
				coreach[id] = true
				queue = append(queue, id)
			}
		}
	}
	for len(queue) > 0 {
		j := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, i := range preds[cnt[j]:cnt[j+1]] {
			if !coreach[i] {
				coreach[i] = true
				queue = append(queue, i)
			}
		}
	}
	stuck, stuckH, stuckLayer := false, uint64(0), int32(0)
	for idx := range g.shards {
		sh := &g.shards[idx]
		for local, h := range sh.byID { // padvet:allow lockguard post-exploration: the layer loop has exited, workers are joined
			if coreach[uint32(local)*s+uint32(idx)] {
				continue
			}
			l := sh.seen[h].layer // padvet:allow lockguard post-exploration: the layer loop has exited, workers are joined
			if !stuck || l < stuckLayer || (l == stuckLayer && h < stuckH) {
				stuck, stuckH, stuckLayer = true, h, l
			}
		}
	}
	if stuck {
		res.Stuck = true
		res.StuckSchedule = g.path(stuckH)
	}
	res.Recoverable = !res.Violation && !res.Stuck && !res.Fault
	return res, nil
}
