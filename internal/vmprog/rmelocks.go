package vmprog

// This file ports recoverable mutual exclusion (RME) algorithms to VM
// programs. An RME program carries a recover section (Program.Recover): a
// crash drops the write buffer and zeroes the volatile registers, and the
// recovery passage re-enters through the recover section, which inspects
// persistent (committed) shared state to decide whether to roll the
// passage forward (re-enter the CS it still owns, or finish an
// interrupted exit) or roll it back (restart the entry protocol).
//
// The ports follow the discipline of the RME literature (Golab-Ramaraju;
// Katzan-Morrison, arXiv:2011.07622; Dhoked-Mittal, arXiv:2110.08308):
// every recovery-relevant variable is written only through CAS, which the
// engines never buffer, so a crash cannot tear the protocol state; plain
// buffered writes are reserved for state whose loss is harmless. The
// deliberately broken variant (RTASDirty) violates exactly this rule.

// RTAS ports the Golab-Ramaraju recoverable test-and-set lock (the VM
// twin of internal/mutex's rtas): the lock word holds owner id+1 and is
// only ever changed by CAS. Recovery reads the lock word; finding its own
// stamp means the crash hit while holding (or after winning) the lock, so
// the passage rolls forward into the CS; anything else rolls back to the
// acquire loop.
func RTAS() (*Program, error) {
	b := NewBuilder("rtas-vm")
	b.SetClass(ClassAdaptive)
	lock := b.Var("lock")
	const (
		rMe, rOne, rMe1, rZero, rObs = 0, 1, 2, 3, 4
	)
	b.Me(rMe)
	b.Const(rOne, 1)
	b.Add(rMe1, rMe, rOne) // stamp = me + 1
	b.Const(rZero, 0)
	b.Label("try")
	b.CAS(rObs, lock, -1, rZero, rMe1)
	b.JumpIfNe(rObs, rZero, "try")
	b.Label("got")
	b.CS()
	b.CAS(rObs, lock, -1, rMe1, rZero) // release via CAS: never buffered
	b.Jump("done")
	b.Label("recover")
	b.Fence() // serialize before trusting shared state (RME idiom)
	b.Me(rMe)
	b.Const(rOne, 1)
	b.Add(rMe1, rMe, rOne)
	b.Const(rZero, 0)
	b.Read(rObs, lock, -1)
	b.JumpIfEq(rObs, rMe1, "got") // crashed holding: roll forward
	b.Jump("try")                 // otherwise: roll back to acquire
	b.Label("done")
	b.Halt()
	b.SetRecover("recover")
	return b.Build()
}

// KMRME ports a Katzan-Morrison-style recoverable lock (arXiv:2011.07622):
// ownership detection by reading the lock word, plus a per-process
// persistent stage variable (0 idle, 1 trying, 2 in/after CS) advanced only
// by CAS at section boundaries. The exit clears the lock word before the
// stage, so recovery can always classify the crash point: lock stamped
// with me means the passage still owns the CS (roll forward through the
// stage it reached); otherwise stage 2 means the CS completed and only the
// stage cleanup remains, and stage 0/1 means the acquisition never won
// (roll back to the announce step).
func KMRME(n int) (*Program, error) {
	b := NewBuilder("km-rme-vm")
	b.SetClass(ClassAdaptive)
	lock := b.Var("lock")
	stage := b.Array("stage", n)
	const (
		rMe, rOne, rMe1, rZero, rObs, rSt, rTwo = 0, 1, 2, 3, 4, 5, 6
	)
	b.Me(rMe)
	b.Const(rOne, 1)
	b.Add(rMe1, rMe, rOne)
	b.Const(rZero, 0)
	b.Const(rTwo, 2)
	b.Label("announce")
	b.CAS(rObs, stage, rMe, rZero, rOne) // stage 0 -> 1 (fails harmlessly on re-entry)
	b.Label("try")
	b.CAS(rObs, lock, -1, rZero, rMe1)
	b.JumpIfNe(rObs, rZero, "try")
	b.Label("won")
	b.CAS(rObs, stage, rMe, rOne, rTwo) // stage 1 -> 2
	b.Label("got")
	b.CS()
	b.CAS(rObs, lock, -1, rMe1, rZero)   // release the lock first...
	b.CAS(rObs, stage, rMe, rTwo, rZero) // ...then retire the stage
	b.Jump("done")
	b.Label("recover")
	b.Fence()
	b.Me(rMe)
	b.Const(rOne, 1)
	b.Add(rMe1, rMe, rOne)
	b.Const(rZero, 0)
	b.Const(rTwo, 2)
	b.Read(rObs, lock, -1)
	b.JumpIfEq(rObs, rMe1, "mine")
	b.Read(rSt, stage, rMe)
	b.JumpIfEq(rSt, rTwo, "cleanup") // lock released, stage not yet: finish exit
	b.Jump("announce")               // never won: roll back
	b.Label("mine")
	b.Read(rSt, stage, rMe)
	b.JumpIfEq(rSt, rTwo, "got") // crashed in the CS region
	b.Jump("won")                // crashed between the win and the stage update
	b.Label("cleanup")
	b.CAS(rObs, stage, rMe, rTwo, rZero)
	b.Jump("done")
	b.Label("done")
	b.Halt()
	b.SetRecover("recover")
	return b.Build()
}

// DMTAS applies a Dhoked-Mittal-style transformation (arXiv:2110.08308) to
// the TAS registry lock: the base CAS lock is wrapped with a per-process
// critical checkpoint (crit, CAS-maintained, set after winning and cleared
// after releasing) and a persistent per-process crash counter (rc,
// incremented by every recovery - the hook their adaptive-to-crashes cost
// analysis charges against). Recovery classifies the crash point from the
// lock word and the checkpoint: stamped lock rolls forward (through the
// checkpoint or straight into the CS), a set checkpoint without the lock
// means the release happened and only the checkpoint cleanup remains, and
// neither means roll back to the acquire loop.
func DMTAS(n int) (*Program, error) {
	b := NewBuilder("dm-tas-vm")
	b.SetClass(ClassAdaptive)
	lock := b.Var("lock")
	crit := b.Array("crit", n)
	rc := b.Array("rc", n)
	const (
		rMe, rOne, rMe1, rZero, rObs, rC, rC1 = 0, 1, 2, 3, 4, 5, 6
	)
	b.Me(rMe)
	b.Const(rOne, 1)
	b.Add(rMe1, rMe, rOne)
	b.Const(rZero, 0)
	b.Label("try")
	b.CAS(rObs, lock, -1, rZero, rMe1)
	b.JumpIfNe(rObs, rZero, "try")
	b.Label("won")
	b.CAS(rObs, crit, rMe, rZero, rOne) // checkpoint: inside the critical region
	b.Label("cs")
	b.CS()
	b.CAS(rObs, lock, -1, rMe1, rZero)  // release the lock first...
	b.CAS(rObs, crit, rMe, rOne, rZero) // ...then retire the checkpoint
	b.Jump("done")
	b.Label("recover")
	b.Fence()
	b.Me(rMe)
	b.Const(rOne, 1)
	b.Add(rMe1, rMe, rOne)
	b.Const(rZero, 0)
	// Count the crash in the persistent recovery counter (rc is private to
	// this process, so the CAS cannot lose an increment).
	b.Read(rC, rc, rMe)
	b.Add(rC1, rC, rOne)
	b.CAS(rObs, rc, rMe, rC, rC1)
	b.Read(rC, lock, -1)
	b.JumpIfEq(rC, rMe1, "mine")
	b.Read(rC1, crit, rMe)
	b.JumpIfEq(rC1, rOne, "cleanup") // released but checkpoint not retired
	b.Jump("try")                    // never held: roll back
	b.Label("mine")
	b.Read(rC1, crit, rMe)
	b.JumpIfEq(rC1, rOne, "cs") // roll forward into the CS re-execution
	b.Jump("won")               // crashed between the win and the checkpoint
	b.Label("cleanup")
	b.CAS(rObs, crit, rMe, rOne, rZero)
	b.Jump("done")
	b.Label("done")
	b.Halt()
	b.SetRecover("recover")
	return b.Build()
}

// DMQueue applies the same Dhoked-Mittal-style transformation to the
// queue-lock tier. A literal MCS port cannot recover - the predecessor
// pointer obtained from the tail swap lives only in a volatile register,
// so a crash between the swap and the link strands both neighbours - so
// the port uses the registry's persistent-queue equivalent (the caschain
// slot queue, MCS-class handoff order) in which every queue edge is a
// committed CAS: membership and position are recomputed by scanning the
// slot array, and a CAS-maintained done flag marks passage completion.
// Recovery rolls forward from the scan result: an unclaimed process
// restarts the claim loop, a claimed one re-waits on its predecessor (or
// re-enters the CS it still owns), and a completed one just halts.
func DMQueue(n int) (*Program, error) {
	b := NewBuilder("dm-queue-vm")
	b.SetClass(ClassAdaptive)
	slot := b.Array("slot", n)
	done := b.Array("done", n)
	const (
		rMe, rOne, rMe1, rZero, rObs, rM, rPrev, rTmp = 0, 1, 2, 3, 4, 5, 6, 7
	)
	b.Me(rMe)
	b.Const(rOne, 1)
	b.Add(rMe1, rMe, rOne)
	b.Const(rZero, 0)
	b.Const(rM, 0)
	b.Label("claim")
	b.CAS(rObs, slot, rM, rZero, rMe1)
	b.JumpIfEq(rObs, rZero, "claimed")
	b.Add(rM, rM, rOne)
	b.Jump("claim")
	b.Label("claimed")
	b.JumpIfEq(rM, rZero, "cs")
	b.Sub(rPrev, rM, rOne)
	b.Label("wait")
	b.Read(rObs, done, rPrev)
	b.JumpIfEq(rObs, rZero, "wait")
	b.Label("cs")
	b.CS()
	b.CAS(rObs, done, rM, rZero, rOne) // completion mark: never buffered
	b.Jump("out")
	b.Label("recover")
	b.Fence()
	b.Me(rMe)
	b.Const(rOne, 1)
	b.Add(rMe1, rMe, rOne)
	b.Const(rZero, 0)
	b.Procs(rTmp)
	b.Const(rM, 0)
	b.Label("scan")
	b.JumpIfEq(rM, rTmp, "notq") // scanned every slot: never enqueued
	b.Read(rObs, slot, rM)
	b.JumpIfEq(rObs, rMe1, "found")
	b.Add(rM, rM, rOne)
	b.Jump("scan")
	b.Label("notq")
	b.Const(rM, 0)
	b.Jump("claim") // roll back: the claim CAS is the only persistent step
	b.Label("found")
	b.Read(rObs, done, rM)
	b.JumpIfEq(rObs, rOne, "out") // passage completed before the crash
	b.JumpIfEq(rM, rZero, "cs")   // head of the queue: roll forward to the CS
	b.Sub(rPrev, rM, rOne)
	b.Jump("wait") // re-wait on the predecessor's completion
	b.Label("out")
	b.Halt()
	b.SetRecover("recover")
	return b.Build()
}

// RTASDirty is the deliberately broken RME variant: it tracks the passage
// checkpoint through plain buffered writes (ckpt[me] = 1 trying, 2
// holding, 0 done) and its recover section trusts that checkpoint without
// serializing first. A crash can drop the checkpoint write (recovery then
// restarts against its own committed lock stamp and spins forever) or
// leave a stale committed 2 after the release (recovery then re-enters the
// CS another process now owns). The static analyzer is required to flag
// the unfenced recovery read (recover-stale-read) and the recoverability
// checker to reject the program with a pinned counterexample.
func RTASDirty(n int) (*Program, error) {
	b := NewBuilder("rtas-dirty-vm")
	b.SetClass(ClassAdaptive)
	lock := b.Var("lock")
	ckpt := b.Array("ckpt", n)
	const (
		rMe, rOne, rMe1, rZero, rObs, rTwo, rTmp = 0, 1, 2, 3, 4, 5, 6
	)
	b.Me(rMe)
	b.Const(rOne, 1)
	b.Add(rMe1, rMe, rOne)
	b.Const(rZero, 0)
	b.Const(rTwo, 2)
	b.Write(ckpt, rMe, rOne) // checkpoint "trying" - buffered, may be lost
	b.Label("try")
	b.CAS(rObs, lock, -1, rZero, rMe1)
	b.JumpIfNe(rObs, rZero, "try")
	b.Write(ckpt, rMe, rTwo) // checkpoint "holding" - buffered, may be lost
	b.Label("got")
	b.CS()
	b.CAS(rObs, lock, -1, rMe1, rZero)
	b.Write(ckpt, rMe, rZero) // checkpoint "done" - buffered, may be lost
	b.Jump("done")
	b.Label("recover")
	// No fence: the recovery bases its decision on a checkpoint whose
	// last write may have been dropped by the crash.
	b.Me(rMe)
	b.Const(rOne, 1)
	b.Add(rMe1, rMe, rOne)
	b.Const(rZero, 0)
	b.Const(rTwo, 2)
	b.Read(rTmp, ckpt, rMe)
	b.JumpIfEq(rTmp, rTwo, "got") // trusts the possibly-stale checkpoint
	b.Jump("try")
	b.Label("done")
	b.Halt()
	b.SetRecover("recover")
	return b.Build()
}
