package vmprog

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// jsonInstr mirrors Instr for decoding. Index needs a pointer: a scalar
// access is Index -1, which is also what an *absent* index field must mean,
// while plain omitempty would silently turn "absent" into register 0.
type jsonInstr struct {
	Op     OpCode `json:"op"`
	A      int    `json:"a"`
	B      int    `json:"b"`
	C      int    `json:"c"`
	Imm    uint64 `json:"imm"`
	Base   int    `json:"base"`
	Index  *int   `json:"index"`
	Target int    `json:"target"`
}

// MarshalJSON emits the instruction with an explicit index field for
// indexed accesses only.
func (in Instr) MarshalJSON() ([]byte, error) {
	j := jsonInstr{Op: in.Op, A: in.A, B: in.B, C: in.C, Imm: in.Imm, Base: in.Base, Target: in.Target}
	if in.Index >= 0 {
		j.Index = &in.Index
	}
	return json.Marshal(j)
}

// UnmarshalJSON decodes an instruction, defaulting a missing index field to
// -1 (scalar access).
func (in *Instr) UnmarshalJSON(data []byte) error {
	var j jsonInstr
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	*in = Instr{Op: j.Op, A: j.A, B: j.B, C: j.C, Imm: j.Imm, Base: j.Base, Index: -1, Target: j.Target}
	if j.Index != nil {
		in.Index = *j.Index
	}
	return nil
}

// Load decodes a JSON-encoded program and validates it: jump targets,
// register indices, and variable bases are all checked up front, so a
// malformed file is an error here rather than a panic mid-simulation.
func Load(r io.Reader) (*Program, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var p Program
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("vmprog: decode program: %w", err)
	}
	if p.Name == "" {
		return nil, fmt.Errorf("vmprog: program has no name")
	}
	if p.Class < ClassUnknown || p.Class > ClassAdaptive {
		return nil, fmt.Errorf("vmprog %s: invalid adaptivity class %d", p.Name, int(p.Class))
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// LoadFile loads and validates a JSON program file.
func LoadFile(path string) (*Program, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// Save encodes the program as indented JSON.
func (p *Program) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}
