package vmprog

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// jsonInstr mirrors Instr for decoding. Index needs a pointer: a scalar
// access is Index -1, which is also what an *absent* index field must mean,
// while plain omitempty would silently turn "absent" into register 0.
type jsonInstr struct {
	Op     OpCode `json:"op"`
	A      int    `json:"a"`
	B      int    `json:"b"`
	C      int    `json:"c"`
	Imm    uint64 `json:"imm"`
	Base   int    `json:"base"`
	Index  *int   `json:"index"`
	Target int    `json:"target"`
}

// MarshalJSON emits the instruction with an explicit index field for
// indexed accesses only.
func (in Instr) MarshalJSON() ([]byte, error) {
	j := jsonInstr{Op: in.Op, A: in.A, B: in.B, C: in.C, Imm: in.Imm, Base: in.Base, Target: in.Target}
	if in.Index >= 0 {
		j.Index = &in.Index
	}
	return json.Marshal(j)
}

// UnmarshalJSON decodes an instruction, defaulting a missing index field to
// -1 (scalar access).
func (in *Instr) UnmarshalJSON(data []byte) error {
	var j jsonInstr
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	*in = Instr{Op: j.Op, A: j.A, B: j.B, C: j.C, Imm: j.Imm, Base: j.Base, Index: -1, Target: j.Target}
	if j.Index != nil {
		in.Index = *j.Index
	}
	return nil
}

// Load decodes a JSON-encoded program and validates it: jump targets,
// register indices, variable bases, and variable-name uniqueness are all
// checked up front, so a malformed file is an error here rather than a
// panic (or a silently wrong array-extent analysis) mid-simulation.
func Load(r io.Reader) (*Program, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var p Program
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("vmprog: decode program: %w", err)
	}
	return validateLoaded(&p)
}

// validateLoaded applies the load-time checks shared by Load and LoadSet.
func validateLoaded(p *Program) (*Program, error) {
	if p.Name == "" {
		return nil, fmt.Errorf("vmprog: program has no name")
	}
	if p.Class < ClassUnknown || p.Class > ClassAdaptive {
		return nil, fmt.Errorf("vmprog %s: invalid adaptivity class %d", p.Name, int(p.Class))
	}
	seen := make(map[string]bool, len(p.Vars))
	for _, v := range p.Vars {
		if seen[v] {
			return nil, fmt.Errorf("vmprog %s: duplicate variable name %q", p.Name, v)
		}
		seen[v] = true
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// LoadSet decodes a JSON array of programs, applying the same per-program
// validation as Load and additionally rejecting duplicate program names:
// a set is addressed by name (lint caches, job artifacts, registries), so
// two entries sharing one silently shadowing the other is a load error.
func LoadSet(r io.Reader) ([]*Program, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var raw []Program
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("vmprog: decode program set: %w", err)
	}
	seen := make(map[string]bool, len(raw))
	out := make([]*Program, 0, len(raw))
	for i := range raw {
		p, err := validateLoaded(&raw[i])
		if err != nil {
			return nil, err
		}
		if seen[p.Name] {
			return nil, fmt.Errorf("vmprog: duplicate program name %q in set", p.Name)
		}
		seen[p.Name] = true
		out = append(out, p)
	}
	return out, nil
}

// LoadFile loads and validates a JSON program file. The file may hold a
// single program object or an array of programs (LoadSet); a single
// program comes back as a one-element slice.
func LoadFile(path string) ([]*Program, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '[' {
		return LoadSet(bytes.NewReader(data))
	}
	p, err := Load(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	return []*Program{p}, nil
}

// Hash returns a hex SHA-256 fingerprint of the program's canonical JSON
// form. It keys lint caches: two programs hash equal exactly when their
// observable structure (name, variable table, code, declared class) is
// identical, so a cached analysis served by hash can never be stale.
func (p *Program) Hash() (string, error) {
	data, err := json.Marshal(p)
	if err != nil {
		return "", fmt.Errorf("vmprog %s: hash: %w", p.Name, err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// Save encodes the program as indented JSON.
func (p *Program) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}
