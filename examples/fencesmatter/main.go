// Fencesmatter: demonstrate that TSO breaks fence-free mutual exclusion.
// Peterson's algorithm with its store-load fences elided admits both
// processes into the critical section; the simulator's scheduler finds the
// violating schedule and we print the execution that exhibits it.
package main

import (
	"errors"
	"fmt"
	"log"

	"priceadaptive/internal/mutex"
	"priceadaptive/internal/tso"
)

func main() {
	fmt.Println("Peterson WITHOUT fences under TSO (writes linger in store buffers):")
	runVariant(mutex.NewPetersonNoFences)
	fmt.Println()
	fmt.Println("Peterson WITH fences under the same scheduler:")
	runVariant(mutex.NewPeterson)
}

func runVariant(factory mutex.Factory) {
	sim, err := tso.NewSimulator(tso.Config{N: 2}, mutex.Build(factory))
	if err != nil {
		log.Fatal(err)
	}
	defer sim.Kill()
	res, err := tso.Run(sim, tso.NewRoundRobin(), 10000)
	if err != nil && !errors.Is(err, tso.ErrStepBudget) {
		log.Fatal(err)
	}
	if res.Violation == nil {
		fmt.Println("  no exclusion violation found - mutual exclusion holds")
		return
	}
	fmt.Printf("  EXCLUSION VIOLATED: %v\n", res.Violation)
	fmt.Println("  the execution that led there:")
	for _, e := range sim.Execution().Events {
		fmt.Printf("    %2d: %s\n", e.Seq, e)
	}
	fmt.Println("  both processes' flag writes sat in their write buffers while")
	fmt.Println("  each read the other's stale flag=0 - the store-load reordering")
	fmt.Println("  TSO permits and a fence forbids.")
}
