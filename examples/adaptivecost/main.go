// Adaptivecost: measure the separation the paper proves. Fence complexity
// per passage as contention grows, for adaptive locks (fences grow with k)
// versus the non-adaptive constant-fence bakery (flat, but pays Θ(N)
// critical events) versus the Θ(log N) tournament.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"priceadaptive/internal/mutex"
	"priceadaptive/internal/rmr"
	"priceadaptive/internal/tso"
)

func main() {
	contentions := []int{2, 4, 8, 16, 32}
	algs := []struct {
		name    string
		factory mutex.Factory
	}{
		{"bakery (non-adaptive, O(1) fences)", mutex.NewBakery},
		{"tournament (Θ(log N) fences)", mutex.NewTournament},
		{"caschain (adaptive, Θ(k) fences)", mutex.NewCASChain},
		{"synthetic (adaptive, Θ(k) fences)", mutex.NewSynthetic},
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "algorithm")
	for _, k := range contentions {
		fmt.Fprintf(tw, "\tk=%d f/c", k)
	}
	fmt.Fprintln(tw)

	for _, a := range algs {
		fmt.Fprint(tw, a.name)
		for _, k := range contentions {
			fences, crit := measure(a.factory, k)
			fmt.Fprintf(tw, "\t%d/%d", fences, crit)
		}
		fmt.Fprintln(tw)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("f/c = max fences / max critical events per passage at contention k.")
	fmt.Println("Corollary 1 in action: the adaptive locks' critical events track k")
	fmt.Println("but their fences grow with k too; bakery keeps 3 fences by paying")
	fmt.Println("critical events proportional to N. No algorithm gets both columns flat.")
}

// measure runs k processes through one passage each under round-robin and
// returns the max fences and critical events per passage.
func measure(factory mutex.Factory, k int) (fences, critical int) {
	sim, err := tso.NewSimulator(tso.Config{N: k}, mutex.Build(factory))
	if err != nil {
		log.Fatal(err)
	}
	defer sim.Kill()
	acc := rmr.Attach(sim, rmr.ModelCCWriteBack)
	res, err := tso.Run(sim, tso.NewRoundRobin(), 100_000_000)
	if err != nil {
		log.Fatal(err)
	}
	if res.Violation != nil {
		log.Fatalf("exclusion violated: %v", res.Violation)
	}
	s := acc.Summarize()
	return s.MaxFences, s.MaxCritical
}
