// Modelchecking: verify locks exhaustively over TSO and PSO schedules with
// the repository's two model checkers, and watch them produce minimized
// counterexamples - including one that refutes a plausible-sounding informal
// argument.
package main

import (
	"context"
	"fmt"
	"log"

	"priceadaptive/internal/check"
	"priceadaptive/internal/mutex"
	"priceadaptive/internal/tso"
	"priceadaptive/internal/vmprog"
)

func main() {
	// 1. The replay-based checker (goroutine engine): complete verification
	// of every reachable TSO state of a fenced Peterson passage.
	fmt.Println("1. fenced Peterson, TSO, goroutine-engine checker:")
	rep, err := check.Exhaustive{CollapseSpins: true, MaxStates: 500000, MaxDepth: 256}.Verify(context.Background(), tso.Config{N: 2}, mutex.Build(mutex.NewPeterson))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   %d states explored, complete=%v, violation=%v\n\n",
		rep.States, rep.Complete, rep.Violation != nil)

	// 2. The fast VM engine: the standard bakery is TSO-safe over its
	// ENTIRE state space, and PSO-broken.
	fmt.Println("2. bakery (fenced doorway), fast VM engine:")
	prog := vmprog.MustBakery(2, false)
	tsoEng, err := vmprog.NewEngineOrdering(prog, 2, tso.TSO)
	if err != nil {
		log.Fatal(err)
	}
	tsoRes, err := tsoEng.Check(context.Background(), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   TSO: %d states, complete=%v, violation=%v\n",
		tsoRes.States, tsoRes.Complete, tsoRes.Violation)
	psoEng, err := vmprog.NewEngineOrdering(prog, 2, tso.PSO)
	if err != nil {
		log.Fatal(err)
	}
	psoRes, err := psoEng.Check(context.Background(), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   PSO: violation=%v (schedule of %d decisions)\n", psoRes.Violation, len(psoRes.Schedule))
	for i, d := range psoRes.Schedule {
		if d.Commit && d.VarPlus1 > 0 {
			fmt.Printf("   decision %d: p%d commits %s OUT OF ISSUE ORDER - the PSO reordering TSO forbids\n",
				i, d.P, prog.Vars[d.VarPlus1-1])
		}
	}
	fmt.Println()

	// 3. A cautionary tale: eliding the bakery's ticket-publication fence
	// "looks" TSO-safe (writes commit in issue order), but the checker
	// refutes the argument - the danger is delay, not order.
	fmt.Println("3. bakery WITHOUT the ticket-publication fence, TSO:")
	weak := vmprog.MustBakery(2, true)
	weakEng, err := vmprog.NewEngineOrdering(weak, 2, tso.TSO)
	if err != nil {
		log.Fatal(err)
	}
	weakRes, err := weakEng.Check(context.Background(), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   violation=%v after %d states\n", weakRes.Violation, weakRes.States)
	fmt.Println("   a process can pass its whole wait loop while its ticket is still")
	fmt.Println("   buffered and invisible; a competitor draws an equal ticket and the")
	fmt.Println("   ID tie-break admits both. The counterexample replays identically on")
	fmt.Println("   the goroutine engine (see internal/vmprog's differential tests).")
}
