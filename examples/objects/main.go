// Objects: the Section 5 story end to end. Build counters from queues,
// stacks and a lock-free Treiber stack, stack Algorithm 1 (a one-time mutex)
// on top of each, and measure that every passage costs exactly one object
// operation plus a constant - the reduction that transfers the paper's fence
// lower bound from locks to counters, stacks and queues.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"priceadaptive/internal/mutex"
	"priceadaptive/internal/objects"
	"priceadaptive/internal/rmr"
	"priceadaptive/internal/tso"
)

func main() {
	const n = 6
	backends := []struct {
		name  string
		build tso.Build
	}{
		{"counter = CAS retry loop", func(s *tso.Simulator) (tso.Program, error) {
			l := objects.NewOneTimeMutex(s.Memory(), n, objects.NewCASCounter(s.Memory()))
			return passage(l), nil
		}},
		{"counter = bakery-locked cell", func(s *tso.Simulator) (tso.Program, error) {
			c, err := objects.NewLockedCounter(s.Memory(), n, mutex.NewBakery)
			if err != nil {
				return nil, err
			}
			return passage(objects.NewOneTimeMutex(s.Memory(), n, c)), nil
		}},
		{"counter = dequeue from queue<0..n>", func(s *tso.Simulator) (tso.Program, error) {
			l, err := objects.OneTimeFromQueue(s.Memory(), n, mutex.NewTAS)
			if err != nil {
				return nil, err
			}
			return passage(l), nil
		}},
		{"counter = pop from lock-free Treiber stack", func(s *tso.Simulator) (tso.Program, error) {
			l, err := objects.OneTimeFromTreiber(s.Memory(), n)
			if err != nil {
				return nil, err
			}
			return passage(l), nil
		}},
	}

	fmt.Printf("Algorithm 1 (one-time mutex from a counter), %d processes:\n\n", n)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "counter backend\tmax fences/passage\tmean\tmax RMRs\texclusion")
	for _, b := range backends {
		sim, err := tso.NewSimulator(tso.Config{N: n}, b.build)
		if err != nil {
			log.Fatal(err)
		}
		acc := rmr.Attach(sim, rmr.ModelCCWriteBack)
		res, err := tso.Run(sim, tso.NewRoundRobin(), 50_000_000)
		if err != nil {
			log.Fatal(err)
		}
		status := "held"
		if res.Violation != nil {
			status = "VIOLATED"
		}
		s := acc.Summarize()
		fmt.Fprintf(tw, "%s\t%d\t%.1f\t%d\t%s\n", b.name, s.MaxFences, s.MeanFences, s.MaxRMRs, status)
		sim.Kill()
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("Each passage performs exactly one fetch&increment (one dequeue / one")
	fmt.Println("pop) plus O(1) extra fences - Lemma 9. Any fence lower bound for")
	fmt.Println("one-time mutual exclusion therefore applies to these objects too,")
	fmt.Println("which is how Corollary 1 reaches counters, stacks and queues.")
}

func passage(l mutex.Lock) tso.Program {
	return func(p *tso.Proc) {
		l.Lock(p)
		p.CS()
		l.Unlock(p)
	}
}
