// Quickstart: run a mutual-exclusion lock and a shared counter on the TSO
// simulator and print per-passage cost metrics.
package main

import (
	"fmt"
	"log"

	"priceadaptive/internal/mutex"
	"priceadaptive/internal/objects"
	"priceadaptive/internal/rmr"
	"priceadaptive/internal/tso"
)

func main() {
	const n = 4

	// Build a simulation of n processes, each performing two passages
	// through a bakery-protected counter increment.
	var counter objects.Counter
	sim, err := tso.NewSimulator(tso.Config{N: n, Passages: 2, AllowConcurrentCS: true},
		func(s *tso.Simulator) (tso.Program, error) {
			c, err := objects.NewLockedCounter(s.Memory(), n, mutex.NewBakery)
			if err != nil {
				return nil, err
			}
			counter = c
			return func(p *tso.Proc) {
				prev := c.FetchIncrement(p)
				fmt.Printf("p%d incremented the counter: %d -> %d\n", p.ID(), prev, prev+1)
				p.CS()
			}, nil
		})
	if err != nil {
		log.Fatal(err)
	}
	defer sim.Kill()

	// Attach an RMR accountant and drive the simulation with a seeded
	// random scheduler (the adversary that decides when buffered writes
	// commit).
	acc := rmr.Attach(sim, rmr.ModelCCWriteBack)
	res, err := tso.Run(sim, tso.NewRandom(42, 0.25), 1_000_000)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ncompleted=%v steps=%d violations=%v\n", res.Completed, res.Steps, res.Violation)
	s := acc.Summarize()
	fmt.Printf("counter %q: %d passages, mean %.1f RMRs and %.1f fences per passage\n",
		counter.Name(), s.Passages, s.MeanRMRs, s.MeanFences)
	fmt.Println("\nThe bakery lock pays 3 fences per passage at any contention -")
	fmt.Println("the flat fence profile the paper proves adaptive algorithms cannot have.")
}
