// Construction: drive the paper's lower-bound construction (Sections 3-4)
// against two victims and print the phase-by-phase trace of Figure 1.
//
//   - Against the adaptive read/write lock, the construction forces one
//     fence per induction step (Theorem 1).
//   - Against the non-adaptive bakery lock, it instead produces a
//     non-adaptivity certificate: a concrete low-contention execution in
//     which a process exceeds the claimed critical-event budget.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"priceadaptive/internal/adversary"
	"priceadaptive/internal/bounds"
	"priceadaptive/internal/mutex"
)

func main() {
	fmt.Println("=== construction vs adaptive read/write lock (N=20) ===")
	drive(mutex.NewSynthetic, 20)
	fmt.Println()
	fmt.Println("=== construction vs bakery, claimed linear adaptivity (N=20) ===")
	drive(mutex.NewBakery, 20)
}

func drive(factory mutex.Factory, n int) {
	res, err := adversary.Run(context.Background(), adversary.Config{
		N:         n,
		Algorithm: mutex.Build(factory),
		F:         bounds.Affine{A: 16, C: 10},
		Check:     adversary.CheckInvariants,
	})
	if err != nil {
		log.Fatal(err)
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "step\tphase\titerations\t|Act| before\t|Act| after\terased")
	for _, ph := range res.Phases {
		fmt.Fprintf(tw, "%d\t%s\t%d\t%d\t%d\t%d\n",
			ph.Induction, ph.Phase, ph.Iterations, ph.ActiveBefore, ph.ActiveAfter, ph.Erased)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("stopped: %v\n", res.Stopped)
	fmt.Printf("fences forced: %d (some process executed %d fences inside one passage\n",
		res.FencesForced, res.FencesForced)
	fmt.Printf("in an execution of total contention %d)\n", res.TotalContention)
	if res.Certificate != nil {
		fmt.Printf("certificate: %v\n", res.Certificate)
	}
}
