// Benchmark harness: one benchmark per experiment (see DESIGN.md
// and EXPERIMENTS.md) plus micro-benchmarks of the simulator substrate.
// Each experiment benchmark regenerates the corresponding paper result and
// reports its headline number as a custom metric, so `go test -bench=.`
// reproduces the full evaluation.
package priceadaptive_test

import (
	"context"
	"fmt"
	"math"
	"testing"

	"priceadaptive/internal/adversary"
	"priceadaptive/internal/bounds"
	"priceadaptive/internal/check"
	"priceadaptive/internal/core"
	"priceadaptive/internal/graphs"
	"priceadaptive/internal/mutex"
	"priceadaptive/internal/rmr"
	"priceadaptive/internal/tso"
	"priceadaptive/internal/vmprog"
)

// BenchmarkE1Construction regenerates Figure 1: one full run of the
// three-phase inductive construction against the adaptive read/write lock.
func BenchmarkE1Construction(b *testing.B) {
	for _, n := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			var forced int
			for i := 0; i < b.N; i++ {
				res, err := adversary.Run(context.Background(), adversary.Config{
					N:         n,
					Algorithm: mutex.Build(mutex.NewSynthetic),
					F:         bounds.Affine{A: 16, C: 10},
				})
				if err != nil {
					b.Fatal(err)
				}
				forced = res.FencesForced
			}
			b.ReportMetric(float64(forced), "fences-forced")
		})
	}
}

// BenchmarkE2FencesForced regenerates Theorem 1's content: fences forced as
// N grows.
func BenchmarkE2FencesForced(b *testing.B) {
	for _, n := range []int{4, 16, 64, 256} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			var forced int
			for i := 0; i < b.N; i++ {
				res, err := adversary.Run(context.Background(), adversary.Config{
					N:         n,
					Algorithm: mutex.Build(mutex.NewSynthetic),
					F:         bounds.Affine{A: 16, C: 10},
				})
				if err != nil {
					b.Fatal(err)
				}
				forced = res.FencesForced
			}
			b.ReportMetric(float64(forced), "fences-forced")
		})
	}
}

// BenchmarkE3Separation regenerates the Corollary 1 separation: fence
// complexity per passage vs contention for each lock family.
func BenchmarkE3Separation(b *testing.B) {
	algs := []struct {
		name    string
		factory mutex.Factory
	}{
		{"bakery", mutex.NewBakery},
		{"tournament", mutex.NewTournament},
		{"caschain", mutex.NewCASChain},
		{"synthetic", mutex.NewSynthetic},
	}
	for _, a := range algs {
		for _, k := range []int{2, 8, 16} {
			b.Run(fmt.Sprintf("%s/k=%d", a.name, k), func(b *testing.B) {
				var fences int
				for i := 0; i < b.N; i++ {
					sim, err := tso.NewSimulator(tso.Config{N: k}, mutex.Build(a.factory))
					if err != nil {
						b.Fatal(err)
					}
					acc := rmr.Attach(sim, rmr.ModelCCWriteBack)
					res, err := tso.Run(sim, tso.NewRoundRobin(), 100_000_000)
					if err != nil || res.Violation != nil {
						sim.Kill()
						b.Fatalf("%v / %v", err, res.Violation)
					}
					fences = acc.Summarize().MaxFences
					sim.Kill()
				}
				b.ReportMetric(float64(fences), "fences/passage")
			})
		}
	}
}

// BenchmarkE4LinearBound regenerates Corollary 2's table.
func BenchmarkE4LinearBound(b *testing.B) {
	for _, l2n := range []float64{64, 1 << 20, 1e18} {
		b.Run(fmt.Sprintf("log2N=%g", l2n), func(b *testing.B) {
			var forced int
			for i := 0; i < b.N; i++ {
				forced = bounds.ForcedFences(bounds.Linear{C: 1}, l2n, 500)
			}
			b.ReportMetric(float64(forced), "fences-forced")
			b.ReportMetric(bounds.Corollary2Rate(1, l2n), "closed-form")
		})
	}
}

// BenchmarkE5ExpBound regenerates Corollary 3's table.
func BenchmarkE5ExpBound(b *testing.B) {
	for _, l2n := range []float64{64, 1 << 20, 1e18} {
		b.Run(fmt.Sprintf("log2N=%g", l2n), func(b *testing.B) {
			var forced int
			for i := 0; i < b.N; i++ {
				forced = bounds.ForcedFences(bounds.Exponential{C: 1}, l2n, 500)
			}
			b.ReportMetric(float64(forced), "fences-forced")
			b.ReportMetric(bounds.Corollary3Rate(1, l2n), "closed-form")
		})
	}
}

// BenchmarkE6Reduction regenerates Lemma 9: the one-time mutex built from a
// counter costs one counter operation plus O(1) fences.
func BenchmarkE6Reduction(b *testing.B) {
	rep := func() *core.Report {
		r, err := core.E6Reduction(context.Background(), 8)
		if err != nil {
			b.Fatal(err)
		}
		return r
	}
	b.Run("N=8", func(b *testing.B) {
		var rows int
		for i := 0; i < b.N; i++ {
			rows = len(rep().Rows)
		}
		b.ReportMetric(float64(rows), "backends")
	})
}

// BenchmarkE7RMRModels regenerates the Section 2 cost-model comparison.
func BenchmarkE7RMRModels(b *testing.B) {
	for _, model := range rmr.Models() {
		for _, n := range []int{4, 16} {
			b.Run(fmt.Sprintf("bakery/%s/N=%d", model, n), func(b *testing.B) {
				var mean float64
				for i := 0; i < b.N; i++ {
					simModel := tso.CC
					if model == rmr.ModelDSM {
						simModel = tso.DSM
					}
					sim, err := tso.NewSimulator(tso.Config{N: n, Model: simModel}, mutex.Build(mutex.NewBakery))
					if err != nil {
						b.Fatal(err)
					}
					acc := rmr.Attach(sim, model)
					if _, err := tso.Run(sim, tso.NewRoundRobin(), 100_000_000); err != nil {
						sim.Kill()
						b.Fatal(err)
					}
					mean = acc.Summarize().MeanRMRs
					sim.Kill()
				}
				b.ReportMetric(mean, "rmr/passage")
			})
		}
	}
}

// BenchmarkE8FenceElision regenerates the fence-elision failure: how fast a
// TSO schedule breaks fence-free Peterson.
func BenchmarkE8FenceElision(b *testing.B) {
	b.Run("peterson-nofence", func(b *testing.B) {
		var seq int
		for i := 0; i < b.N; i++ {
			sim, err := tso.NewSimulator(tso.Config{N: 2}, mutex.Build(mutex.NewPetersonNoFences))
			if err != nil {
				b.Fatal(err)
			}
			res, _ := tso.Run(sim, tso.NewRoundRobin(), 10000)
			if res.Violation == nil {
				sim.Kill()
				b.Fatal("expected violation")
			}
			seq = res.Violation.Seq
			sim.Kill()
		}
		b.ReportMetric(float64(seq), "events-to-violation")
	})
}

// BenchmarkSimulatorStep measures the cost of one simulated event
// (request/grant round trip included).
func BenchmarkSimulatorStep(b *testing.B) {
	var v *tso.Var
	sim, err := tso.NewSimulator(tso.Config{N: 1, Passages: 1 << 30, AllowConcurrentCS: true},
		func(s *tso.Simulator) (tso.Program, error) {
			v = s.Memory().NewVar("x")
			return func(p *tso.Proc) {
				p.Read(v)
				p.CS()
			}, nil
		})
	if err != nil {
		b.Fatal(err)
	}
	defer sim.Kill()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Step(0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplayErasure measures the cost of erasing a process from an
// execution by replay, as done throughout the construction.
func BenchmarkReplayErasure(b *testing.B) {
	build := func(s *tso.Simulator) (tso.Program, error) {
		vs := s.Memory().NewArray("v", 8)
		return func(p *tso.Proc) {
			for i := 0; i < 8; i++ {
				p.Read(vs[(int(p.ID())+i)%8])
				p.Write(vs[p.ID()%8], uint64(i))
			}
			p.Fence()
			p.CS()
		}, nil
	}
	sim, err := tso.NewSimulator(tso.Config{N: 8, AllowConcurrentCS: true}, build)
	if err != nil {
		b.Fatal(err)
	}
	defer sim.Kill()
	if _, err := tso.Run(sim, tso.NewRoundRobin(), 1_000_000); err != nil {
		b.Fatal(err)
	}
	banned := map[tso.ProcID]bool{7: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := sim.Replay(banned)
		if err != nil {
			b.Fatal(err)
		}
		rs.Kill()
	}
}

// BenchmarkTuranIndependentSet measures the greedy independent-set routine
// on a construction-sized conflict graph.
func BenchmarkTuranIndependentSet(b *testing.B) {
	ids := make([]tso.ProcID, 256)
	for i := range ids {
		ids[i] = tso.ProcID(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := graphs.New(ids)
		for j := 0; j < 256; j++ {
			g.AddEdge(tso.ProcID(j), tso.ProcID((j*7+3)%256))
			g.AddEdge(tso.ProcID(j), tso.ProcID((j*13+11)%256))
		}
		if got := len(g.IndependentSet()); got < g.TuranBound() {
			b.Fatalf("independent set %d below Turán bound %d", got, g.TuranBound())
		}
	}
}

// BenchmarkBoundsForcedFences measures the Theorem 1 solver.
func BenchmarkBoundsForcedFences(b *testing.B) {
	var sink int
	for i := 0; i < b.N; i++ {
		sink = bounds.ForcedFences(bounds.Linear{C: 1}, 1e18, 400)
	}
	_ = sink
	if math.IsNaN(float64(sink)) {
		b.Fatal("unreachable")
	}
}

// BenchmarkModelChecker measures the bounded exhaustive verifier: full
// verification of a fenced two-process Peterson passage.
func BenchmarkModelChecker(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := check.Exhaustive{CollapseSpins: true, MaxStates: 500000, MaxDepth: 256}.
			Verify(context.Background(), tso.Config{N: 2}, mutex.Build(mutex.NewPeterson))
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Complete || rep.Violation != nil {
			b.Fatalf("complete=%v violation=%v", rep.Complete, rep.Violation)
		}
		b.ReportMetric(float64(rep.States), "states")
	}
}

// BenchmarkViolationMinimization measures delta-debugging a PSO
// counterexample down to its minimal schedule.
func BenchmarkViolationMinimization(b *testing.B) {
	cfg := tso.Config{N: 2, Ordering: tso.PSO}
	rep, err := check.Exhaustive{CollapseSpins: true, MaxStates: 300000, MaxDepth: 256}.
		Verify(context.Background(), cfg, mutex.Build(mutex.NewBakeryWeakDoorway))
	if err != nil || rep.Violation == nil {
		b.Fatalf("no violation: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		min, err := check.Minimize(context.Background(), cfg, mutex.Build(mutex.NewBakeryWeakDoorway), rep.Schedule)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(min)), "decisions")
	}
}

// BenchmarkE10Adaptivity measures the adaptivity-function sweep for the
// adaptive CAS-chain lock.
func BenchmarkE10Adaptivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := core.E10Adaptivity(context.Background(), []int{16, 64}, []int{1, 4, 8})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Rows) == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkYangAndersonPassage measures full-contention passages of the
// local-spin tournament.
func BenchmarkYangAndersonPassage(b *testing.B) {
	for _, n := range []int{4, 16} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sim, err := tso.NewSimulator(tso.Config{N: n}, mutex.Build(mutex.NewYangAnderson))
				if err != nil {
					b.Fatal(err)
				}
				res, err := tso.Run(sim, tso.NewRoundRobin(), 100_000_000)
				if err != nil || res.Violation != nil {
					sim.Kill()
					b.Fatalf("%v/%v", err, res.Violation)
				}
				sim.Kill()
			}
		})
	}
}

// BenchmarkExactTheorem1 measures the math/big cross-check of the bound.
func BenchmarkExactTheorem1(b *testing.B) {
	n := bounds.PowerOfTwo(65536)
	for i := 0; i < b.N; i++ {
		bounds.ForcedFencesExact(bounds.Linear{C: 1}, n, 50)
	}
}

// BenchmarkFastVsReplayChecker compares the two model checkers on the same
// verification task (fenced Peterson, complete TSO verification). The fast
// VM engine avoids replay-based backtracking entirely.
func BenchmarkFastVsReplayChecker(b *testing.B) {
	b.Run("vmprog-fast", func(b *testing.B) {
		p := vmprog.MustPeterson(true)
		for i := 0; i < b.N; i++ {
			eng, err := vmprog.NewEngineOrdering(p, 2, tso.TSO)
			if err != nil {
				b.Fatal(err)
			}
			res, err := eng.Check(context.Background(), 0)
			if err != nil || !res.Complete || res.Violation {
				b.Fatalf("%v %+v", err, res)
			}
			b.ReportMetric(float64(res.States), "states")
		}
	})
	b.Run("replay-based", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rep, err := check.Exhaustive{CollapseSpins: true, MaxStates: 500000, MaxDepth: 256}.
				Verify(context.Background(), tso.Config{N: 2}, mutex.Build(mutex.NewPeterson))
			if err != nil || !rep.Complete || rep.Violation != nil {
				b.Fatalf("%v %+v", err, rep)
			}
			b.ReportMetric(float64(rep.States), "states")
		}
	})
}

// BenchmarkE11VerificationMatrix measures the full verification matrix.
func BenchmarkE11VerificationMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := core.E11VerificationMatrix(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Rows) != 16 {
			b.Fatalf("rows = %d", len(rep.Rows))
		}
	}
}
